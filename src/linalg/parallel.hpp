#pragma once
// Dense multiplication on multiple tensor units (the §3.1/§6 extension).
//
// The Theorem 2 blocked algorithm parallelizes naturally: each output
// column strip (one weight tile column) is an independent chain of tall
// calls, so strips are dealt to units greedily by load. With p units and
// at least p strips the tensor term drops from n^{3/2}/sqrt(m) to
// n^{3/2}/(p sqrt(m)) while each unit still pays l per resident tile —
// measured by the ABL4 ablation bench.
//
// Execution is genuinely parallel: strips are enqueued on a
// `PoolExecutor` (one worker thread per unit) and write disjoint column
// strips of C, so workers never touch the same memory. Dealing happens on
// the calling thread against *projected* loads equal to the exact
// simulated cost each strip will charge, so the assignment — and with it
// every unit's `Counters` — is bit-identical to the historical serial
// execute-then-pick loop regardless of thread interleaving.
//
// Two modes extend the PR 1 runtime:
//   * ragged shapes — the final partial strip/tile is zero-padded into
//     worker-local scratch exactly like the single-unit matmul_tcu, so
//     the pool path accepts any dimensions and produces bit-identical
//     outputs and charge totals;
//   * tile affinity — with `PoolMatmulOptions::affinity`, every B tile
//     carries its address as a resident-operand key; the dealer routes a
//     strip to the lane already holding its entry tile and the device
//     skips the re-load latency (`gemm_resident`), which is what makes
//     repeated products against the same weights (batches, nn forwards)
//     cheaper than PR 1's reload-every-call schedule.

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/pool.hpp"
#include "linalg/dense.hpp"

namespace tcu::linalg {

struct PoolMatmulOptions {
  /// Tag B tiles with resident-operand keys (their storage address) and
  /// deal strips with tile affinity: every strip declares its full chain
  /// of B-tile keys and the dealer scores lanes by predicted LRU hits.
  /// Off by default: untagged dealing is the pure least-loaded schedule.
  ///
  /// The key is an *identity token*, not a content hash: a resident hit
  /// is only meaningful when the same storage still holds the same tile.
  /// That holds for the intended workloads — long-lived weight matrices
  /// (nn layers, a shared batch B) multiplied repeatedly. A caller that
  /// frees B and reuses the allocation for different data between
  /// affinity calls would inherit stale residency and undercount load
  /// latency; use untagged calls (or fresh pools) for such churn.
  bool affinity = false;

  /// Split each strip's chain at tile granularity: one task per B tile,
  /// each computing a partial product that the shared CPU combines after
  /// the join. This lets a deep B (chain k > 1) both parallelize across
  /// lanes and fit each lane's share of the tiles in a cache with c < k,
  /// so repeated products pay each tile's load once per owning lane
  /// instead of once per strip visit. Opt-in because the partial-sum
  /// combine reassociates the floating-point accumulation: outputs are
  /// run- and p-deterministic (and exact for integral T), but may differ
  /// from the fused chain by rounding. The partials hold k_tiles copies
  /// of C until the join — size the cache (or keep fused chains) for
  /// very deep B instead. Requires `affinity`; ignored for single-tile
  /// chains.
  bool split_chains = false;

  /// Optional identity override for B's tiles (element origin (kb, jb) ->
  /// key): empty means "key by storage address", the right default for a
  /// long-lived B. Callers whose B is a transient repack of long-lived
  /// weights (conv2d's filter bank) key on the underlying storage so
  /// residency survives the repack being rebuilt between calls. Symbolic
  /// keys (`make_tile_key`) must honor the same contract: equal keys,
  /// equal tile content.
  TileKeyFn tile_key = {};

  /// Split the tall dimension into up to this many tile-aligned row
  /// chunks per output strip, each (chunk, strip) pair its own task
  /// declaring the strip's full chain — the schedule conv2d's im2col
  /// strips use to parallelize products with fewer strips than units
  /// (the DFT levels run the analogous split, but over raw device calls
  /// without the Theorem 2 scratch accounting, so they keep their own
  /// dealer in dft.cpp). Chunk boundaries fall on multiples of sqrt(m)
  /// and each chunk re-runs the whole chain, so outputs stay
  /// bit-identical while the latency split changes by exactly l per
  /// extra call (paid on first touch or saved on a resident hit; the
  /// counters_match relation of the PR 4 benches). Clamped to the
  /// available full tile-rows; 1 is the classic one-task-per-strip
  /// dealing, and 0 (the default) means "auto" — no split here, the
  /// unit count in conv2d_tcu_pool — so an explicit 1 stays reachable
  /// through wrappers that auto-split. Aligned shapes only — ignored
  /// for ragged inputs and in split_chains mode.
  std::size_t row_chunks = 0;
};

/// True iff A * B can run on the pool fast path without padding. The pool
/// matmul itself now accepts ragged shapes; this remains for callers that
/// want to know whether scratch padding will be involved.
template <typename T>
bool pool_shapes_aligned(const DevicePool<T>& pool, ConstMatrixView<T> A,
                         ConstMatrixView<T> B) {
  const std::size_t s = pool.unit(0).tile_dim();
  return (A.rows % s) == 0 && (A.cols % s) == 0 && (B.cols % s) == 0;
}

namespace detail {

/// Exact tensor time of one tile of a strip chain (left operand rows x s).
/// Untagged chains charge exactly what Device::gemm will
/// (projected_gemm_cost); with affinity the weak-model split shares its
/// resident tile, so the load latency is paid once per tile instead of
/// once per square call — mirroring Device::gemm_resident's charging.
template <typename T>
std::uint64_t strip_tile_cost(const Device<T>& unit, std::uint64_t rows,
                              bool affinity) {
  const auto s = static_cast<std::uint64_t>(unit.tile_dim());
  if (!affinity || unit.allows_tall() || rows <= s) {
    return projected_gemm_cost(unit, rows);
  }
  const std::uint64_t calls = (rows + s - 1) / s;
  return calls * unit.m() + unit.latency();
}

/// One ragged output strip on a pool worker: task-local scratch around
/// the shared per-strip body of the single-unit ragged path
/// (detail::ragged_strip_into), so outputs and counter totals stay
/// bit-identical to serial by construction. `keys` holds the strip's
/// B-tile identities indexed by tile (kb / s); empty = untagged dealing.
template <typename T>
void ragged_strip(Device<T>& unit, ConstMatrixView<T> A, ConstMatrixView<T> B,
                  MatrixView<T> C, std::size_t jb,
                  const std::vector<std::uint64_t>& keys) {
  const std::size_t s = unit.tile_dim();
  Matrix<T> b_tile(s, s, T{});
  Matrix<T> a_strip(A.rows, s, T{});
  Matrix<T> c_strip(A.rows, s, T{});
  ragged_strip_into(
      unit, A, B, C, jb, b_tile, a_strip, c_strip,
      [&unit, &keys, s](std::size_t kb, ConstMatrixView<T> a,
                        ConstMatrixView<T> b, MatrixView<T> c,
                        bool accumulate) {
        if (!keys.empty()) {
          unit.gemm_resident(keys[kb / s], a, b, c, accumulate);
        } else {
          // tcu-lint: untagged-ok(untagged dealing mode; task came via plain submit)
          unit.gemm(a, b, c, accumulate);
        }
      });
}

/// Tile-granular schedule for deep chains (split_chains): one task per
/// (B tile, output strip) pair, submitted tile-major and each declaring
/// its single-tile chain, so the dealer routes every visit to the lane
/// whose cache holds (or will hold) that tile. Each task writes its own
/// padded partial product; the shared CPU combines partials in ascending
/// tile order after the join — a deterministic, p-independent summation
/// (bit-identical to running the same mode on one unit; exact for
/// integral T).
template <typename T>
void matmul_pool_tile_split(PoolExecutor<T>& exec, ConstMatrixView<T> A,
                            ConstMatrixView<T> B, MatrixView<T> C,
                            const TileKeyFn& tile_key) {
  DevicePool<T>& pool = exec.pool();
  const Device<T>& unit0 = pool.unit(0);
  const std::size_t s = unit0.tile_dim();
  const std::size_t p = A.rows, q = A.cols, r = B.cols;
  const std::size_t k_tiles = (q + s - 1) / s;
  const std::size_t strips = (r + s - 1) / s;
  const std::uint64_t tile_cost = strip_tile_cost(unit0, p, /*affinity=*/true);

  // All partials are allocated up front so the tasks' captured pointers
  // stay stable; entry (kb/s)*strips + (jb/s) holds tile (kb, jb)'s
  // padded p x s contribution to strip jb.
  std::vector<Matrix<T>> partials;
  partials.reserve(k_tiles * strips);
  for (std::size_t i = 0; i < k_tiles * strips; ++i) {
    partials.emplace_back(p, s, T{});
  }

  std::size_t ti = 0;
  for (std::size_t kb = 0; kb < q; kb += s) {
    for (std::size_t jb = 0; jb < r; jb += s, ++ti) {
      Matrix<T>* out = &partials[ti];
      const std::uint64_t key =
          tile_key ? tile_key(kb, jb)
                   : reinterpret_cast<std::uintptr_t>(&B(kb, jb));
      auto task = [A, B, out, kb, jb, s, key](Device<T>& unit) {
        const std::size_t kw = std::min(s, A.cols - kb);
        const std::size_t jw = std::min(s, B.cols - jb);
        if (kw == s && jw == s) {
          unit.gemm_resident(key, A.subview(0, kb, A.rows, s),
                             B.subview(kb, jb, s, s), out->view(),
                             /*accumulate=*/false);
          return;
        }
        // Ragged edge tile: zero-pad operands into task-local scratch,
        // charged exactly like the fused ragged path's per-tile work.
        Matrix<T> b_tile(s, s, T{});
        for (std::size_t i = 0; i < kw; ++i) {
          for (std::size_t j = 0; j < jw; ++j) b_tile(i, j) = B(kb + i, jb + j);
        }
        Matrix<T> a_strip(A.rows, s, T{});
        for (std::size_t i = 0; i < A.rows; ++i) {
          for (std::size_t k = 0; k < kw; ++k) a_strip(i, k) = A(i, kb + k);
        }
        unit.charge_cpu(kw * jw + A.rows * kw);
        unit.gemm_resident(key, a_strip.view().as_const(),
                           b_tile.view().as_const(), out->view(),
                           /*accumulate=*/false);
      };
      exec.submit_affine(tile_cost, {key}, std::move(task));
    }
  }
  exec.join();

  // Shared-CPU combine, ascending tile order per strip: the summation
  // order depends only on the tiling, never on the dealing.
  for (std::size_t jb = 0; jb < r; jb += s) {
    const std::size_t jw = std::min(s, r - jb);
    for (std::size_t kb = 0; kb < q; kb += s) {
      const Matrix<T>& part = partials[(kb / s) * strips + (jb / s)];
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = 0; j < jw; ++j) {
          if (kb == 0) {
            C(i, jb + j) = part(i, j);
          } else {
            C(i, jb + j) += part(i, j);
          }
        }
      }
      pool.charge_cpu(p * jw);
    }
  }
}

/// The body of one output-strip task — shared verbatim by the joining
/// dealer (matmul_tcu_pool_into) and the ticket-returning epoch variant
/// (matmul_tcu_pool_strips), so both schedules run bit-identical strip
/// work. `keys` empty = untagged; `r0`/`nr` select the row chunk (the
/// full height for unchunked strips).
template <typename T>
auto strip_task(ConstMatrixView<T> A, ConstMatrixView<T> B, MatrixView<T> C,
                std::size_t jb, std::size_t s, bool ragged, std::size_t r0,
                std::size_t nr, std::vector<std::uint64_t> keys) {
  return [A, B, C, jb, s, ragged, r0, nr,
          keys = std::move(keys)](Device<T>& unit) {
    if (ragged) {
      detail::ragged_strip(unit, A, B, C, jb, keys);
      return;
    }
    for (std::size_t kb = 0; kb < A.cols; kb += s) {
      if (!keys.empty()) {
        unit.gemm_resident(keys[kb / s], A.subview(r0, kb, nr, s),
                           B.subview(kb, jb, s, s), C.subview(r0, jb, nr, s),
                           /*accumulate=*/kb != 0);
      } else {
        // tcu-lint: untagged-ok(untagged dealing mode; task came via plain submit)
        unit.gemm(A.subview(r0, kb, nr, s), B.subview(kb, jb, s, s),
                  C.subview(r0, jb, nr, s), /*accumulate=*/kb != 0);
      }
    }
  };
}

/// The per-strip B-tile chains of an affinity product, built once on the
/// scheduling path (empty when `affinity` is off).
template <typename T>
std::vector<std::vector<std::uint64_t>> strip_chains(
    ConstMatrixView<T> B, std::size_t s, bool affinity,
    const TileKeyFn& tile_key) {
  const std::size_t q = B.rows, r = B.cols;
  std::vector<std::vector<std::uint64_t>> chains((r + s - 1) / s);
  if (!affinity) return chains;
  for (std::size_t jb = 0; jb < r; jb += s) {
    std::vector<std::uint64_t>& chain = chains[jb / s];
    chain.reserve((q + s - 1) / s);
    for (std::size_t kb = 0; kb < q; kb += s) {
      chain.push_back(tile_key
                          ? tile_key(kb, jb)
                          : reinterpret_cast<std::uintptr_t>(&B(kb, jb)));
    }
  }
  return chains;
}

/// Per-strip B-tile chains of a tile-major right operand (empty chains
/// when `affinity` is off), keyed by detail::tiled_b_key.
template <typename T>
std::vector<std::vector<std::uint64_t>> tiled_strip_chains(
    const TiledMatrix<T>& B, bool affinity, const TileKeyFn& tile_key) {
  std::vector<std::vector<std::uint64_t>> chains(B.tile_cols());
  if (!affinity) return chains;
  for (std::size_t jt = 0; jt < B.tile_cols(); ++jt) {
    std::vector<std::uint64_t>& chain = chains[jt];
    chain.reserve(B.tile_rows());
    for (std::size_t kt = 0; kt < B.tile_rows(); ++kt) {
      chain.push_back(tiled_b_key(B, kt, jt, tile_key));
    }
  }
  return chains;
}

/// One output-strip task over a tile-major B (row-major A/C): every right
/// operand the worker hands the device is a contiguous tile. Shared by
/// the joining and the ticket-returning dealers below.
template <typename T>
auto tiled_strip_task(ConstMatrixView<T> A, const TiledMatrix<T>* B,
                      MatrixView<T> C, std::size_t jt,
                      std::vector<std::uint64_t> keys) {
  return [A, B, C, jt, keys = std::move(keys)](Device<T>& unit) {
    const std::size_t s = B->tile_dim();
    for (std::size_t kt = 0; kt < B->tile_rows(); ++kt) {
      ConstMatrixView<T> a = A.subview(0, kt * s, A.rows, s);
      MatrixView<T> c = C.subview(0, jt * s, A.rows, s);
      if (!keys.empty()) {
        unit.gemm_resident(keys[kt], a, B->tile_view(kt, jt), c,
                           /*accumulate=*/kt != 0);
      } else {
        // tcu-lint: untagged-ok(untagged dealing mode; task came via plain submit)
        unit.gemm(a, B->tile_view(kt, jt), c, /*accumulate=*/kt != 0);
      }
    }
  };
}

/// Fully tile-major strip task: the dealt A strip, the resident B tile,
/// and the written C strip are all contiguous blocks.
template <typename T>
auto tiled_strip_task(const TiledMatrix<T>* A, const TiledMatrix<T>* B,
                      TiledMatrix<T>* C, std::size_t jt,
                      std::vector<std::uint64_t> keys) {
  return [A, B, C, jt, keys = std::move(keys)](Device<T>& unit) {
    for (std::size_t kt = 0; kt < B->tile_rows(); ++kt) {
      if (!keys.empty()) {
        unit.gemm_resident(keys[kt], A->strip_view(kt), B->tile_view(kt, jt),
                           C->strip_view(jt), /*accumulate=*/kt != 0);
      } else {
        // tcu-lint: untagged-ok(untagged dealing mode; task came via plain submit)
        unit.gemm(A->strip_view(kt), B->tile_view(kt, jt), C->strip_view(jt),
                  /*accumulate=*/kt != 0);
      }
    }
  };
}

}  // namespace detail

/// C = A * B dealt across the executor's units, one task per output column
/// strip; any shapes (the final partial strip is padded in worker-local
/// scratch). The caller-owned executor is reused — submit and join only,
/// no thread churn — and the barrier at the end leaves the executor ready
/// for the next round. With affinity every strip declares its B-tile
/// chain; with `split_chains` deep chains are additionally split into
/// per-tile tasks with a CPU combine (see PoolMatmulOptions).
template <typename T>
void matmul_tcu_pool_into(PoolExecutor<T>& exec,
                          std::type_identity_t<ConstMatrixView<T>> A,
                          std::type_identity_t<ConstMatrixView<T>> B,
                          std::type_identity_t<MatrixView<T>> C,
                          PoolMatmulOptions opts = {}) {
  if (A.cols != B.rows) {
    throw std::invalid_argument("matmul_tcu_pool: inner dimensions differ");
  }
  if (C.rows != A.rows || C.cols != B.cols) {
    throw std::invalid_argument("matmul_tcu_pool: output shape mismatch");
  }
  DevicePool<T>& pool = exec.pool();
  const Device<T>& unit0 = pool.unit(0);
  const std::size_t s = unit0.tile_dim();
  const std::size_t p = A.rows, q = A.cols, r = B.cols;
  const bool ragged = (p % s) || (q % s) || (r % s);
  const std::uint64_t tile_cost =
      detail::strip_tile_cost(unit0, p, opts.affinity);
  const std::uint64_t k_tiles = (q + s - 1) / s;
  const std::uint64_t strip_cost = k_tiles * tile_cost;

  if (opts.affinity && opts.split_chains && k_tiles > 1) {
    detail::matmul_pool_tile_split(exec, A, B, C, opts.tile_key);
    return;
  }

  // Tall-dimension split (row_chunks > 1, aligned shapes): each chunk
  // re-runs every strip's chain over its own row block.
  const std::size_t row_tiles = p / s;
  const std::size_t chunks =
      ragged ? 1
             : std::max<std::size_t>(
                   1, std::min(std::max<std::size_t>(opts.row_chunks, 1),
                               row_tiles));

  // Each strip's full tile chain — one key per B tile, in call order —
  // is invariant across chunks, so build it once per strip up front (the
  // submit loop is the serialized scheduling path).
  const std::vector<std::vector<std::uint64_t>> chains =
      detail::strip_chains(B, s, opts.affinity, opts.tile_key);

  std::size_t r0 = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t nr =
        chunks == 1 ? p : (row_tiles / chunks + (c < row_tiles % chunks)) * s;
    const std::uint64_t chunk_cost =
        chunks == 1 ? strip_cost
                    : k_tiles * detail::strip_tile_cost(unit0, nr,
                                                        opts.affinity);
    for (std::size_t jb = 0; jb < r; jb += s) {
      const std::vector<std::uint64_t>& chain = chains[jb / s];
      auto task = detail::strip_task(A, B, C, jb, s, ragged, r0, nr, chain);
      if (opts.affinity) {
        exec.submit_affine(chunk_cost, chain, std::move(task));
      } else {
        exec.submit(chunk_cost, std::move(task));
      }
    }
    r0 += nr;
  }
  exec.join();
}

/// Ticket-returning no-join product for epoch-mode pipelines: submits one
/// task per output column strip (no row chunking or tile splitting) and
/// returns the strips' TaskTickets, in strip order, WITHOUT joining.
/// Strip jb's ticket retires exactly when C's columns [jb*s, jb*s+s) are
/// final, so downstream work — a per-strip epilogue — can depend on
/// single strips (TaskDeps) instead of a full barrier, overlapping with
/// the remaining strips' products. Strip bodies, submission order, and
/// projected costs are identical to matmul_tcu_pool_into's unchunked
/// schedule, so counters stay bit-compatible. The caller owes the
/// executor a join() (or a fence via join_epoch) before the submit
/// thread reads C, and must keep A, B, and C alive until then.
template <typename T>
std::vector<TaskTicket> matmul_tcu_pool_strips(
    PoolExecutor<T>& exec, std::type_identity_t<ConstMatrixView<T>> A,
    std::type_identity_t<ConstMatrixView<T>> B,
    std::type_identity_t<MatrixView<T>> C, PoolMatmulOptions opts = {}) {
  if (A.cols != B.rows) {
    throw std::invalid_argument("matmul_tcu_pool: inner dimensions differ");
  }
  if (C.rows != A.rows || C.cols != B.cols) {
    throw std::invalid_argument("matmul_tcu_pool: output shape mismatch");
  }
  const Device<T>& unit0 = exec.pool().unit(0);
  const std::size_t s = unit0.tile_dim();
  const std::size_t p = A.rows, q = A.cols, r = B.cols;
  const bool ragged = (p % s) || (q % s) || (r % s);
  const std::uint64_t strip_cost =
      ((q + s - 1) / s) * detail::strip_tile_cost(unit0, p, opts.affinity);
  const std::vector<std::vector<std::uint64_t>> chains =
      detail::strip_chains(B, s, opts.affinity, opts.tile_key);

  std::vector<TaskTicket> tickets;
  tickets.reserve(chains.size());
  for (std::size_t jb = 0; jb < r; jb += s) {
    const std::vector<std::uint64_t>& chain = chains[jb / s];
    auto task = detail::strip_task(A, B, C, jb, s, ragged, /*r0=*/0,
                                   /*nr=*/p, chain);
    if (opts.affinity) {
      tickets.push_back(
          exec.submit_affine(strip_cost, chain, TaskDeps{}, std::move(task)));
    } else {
      tickets.push_back(exec.submit(strip_cost, TaskDeps{}, std::move(task)));
    }
  }
  return tickets;
}

/// C = A * B across the pool's units with a throwaway executor (spawns and
/// joins the worker threads). Prefer the PoolExecutor overload in loops.
template <typename T>
void matmul_tcu_pool_into(DevicePool<T>& pool,
                          std::type_identity_t<ConstMatrixView<T>> A,
                          std::type_identity_t<ConstMatrixView<T>> B,
                          std::type_identity_t<MatrixView<T>> C,
                          PoolMatmulOptions opts = {}) {
  PoolExecutor<T> exec(pool);
  matmul_tcu_pool_into(exec, A, B, C, opts);
}

/// Allocating wrapper over the persistent-executor path.
template <typename T>
Matrix<T> matmul_tcu_pool(PoolExecutor<T>& exec,
                          std::type_identity_t<ConstMatrixView<T>> A,
                          std::type_identity_t<ConstMatrixView<T>> B,
                          PoolMatmulOptions opts = {}) {
  Matrix<T> C(A.rows, B.cols, T{});
  matmul_tcu_pool_into(exec, A, B, C.view(), opts);
  return C;
}

/// Allocating wrapper for `matmul_tcu_pool_into`.
template <typename T>
Matrix<T> matmul_tcu_pool(DevicePool<T>& pool,
                          std::type_identity_t<ConstMatrixView<T>> A,
                          std::type_identity_t<ConstMatrixView<T>> B,
                          PoolMatmulOptions opts = {}) {
  Matrix<T> C(A.rows, B.cols, T{});
  matmul_tcu_pool_into(pool, A, B, C.view(), opts);
  return C;
}

// ------------------------------------------------------------- tile-major
// The tile-major dealers: same greedy projected-cost scheduling as the
// row-major paths, but every right operand reaching a worker's device is
// a contiguous tile (and, in the all-tile-major overload, the dealt A
// strips and written C strips are contiguous too). One task per output
// strip — row_chunks and split_chains do not apply here; callers needing
// those schedules keep the row-major dealer.

namespace detail {

/// Shared validation + submit loop for the tile-major dealers. `make_task`
/// builds the strip-jt task; returns the tickets without joining.
template <typename T, typename MakeTask>
std::vector<TaskTicket> deal_tiled_strips(PoolExecutor<T>& exec,
                                          const TiledMatrix<T>& B,
                                          std::uint64_t left_rows,
                                          const PoolMatmulOptions& opts,
                                          MakeTask&& make_task) {
  const Device<T>& unit0 = exec.pool().unit(0);
  if (B.tile_dim() != unit0.tile_dim()) {
    throw std::invalid_argument(
        "matmul_tcu_pool tiled: B tile_dim must equal the units' sqrt(m)");
  }
  const std::uint64_t strip_cost =
      B.tile_rows() * strip_tile_cost(unit0, left_rows, opts.affinity);
  const std::vector<std::vector<std::uint64_t>> chains =
      tiled_strip_chains(B, opts.affinity, opts.tile_key);
  std::vector<TaskTicket> tickets;
  tickets.reserve(B.tile_cols());
  for (std::size_t jt = 0; jt < B.tile_cols(); ++jt) {
    auto task = make_task(jt, chains[jt]);
    if (opts.affinity) {
      tickets.push_back(exec.submit_affine(strip_cost, chains[jt], TaskDeps{},
                                           std::move(task)));
    } else {
      tickets.push_back(exec.submit(strip_cost, TaskDeps{}, std::move(task)));
    }
  }
  return tickets;
}

}  // namespace detail

/// C = A * B with a tile-major B dealt across the executor's units; A and
/// C stay row-major. B's logical shape must be tile-aligned (its padding
/// is storage-internal); keys default to tile addresses, and a TileKeyFn
/// (element origins) can pin them to other storage — DenseLayer keys its
/// packed tiles by the original weights so every path shares one
/// identity. Joins before returning.
template <typename T>
void matmul_tcu_pool_into(PoolExecutor<T>& exec,
                          std::type_identity_t<ConstMatrixView<T>> A,
                          const TiledMatrix<T>& B,
                          std::type_identity_t<MatrixView<T>> C,
                          PoolMatmulOptions opts = {}) {
  const std::size_t s = B.tile_dim();
  if (B.rows() % s || B.cols() % s) {
    throw std::invalid_argument(
        "matmul_tcu_pool tiled: B logical shape must be tile-aligned");
  }
  if (A.cols != B.rows() || C.rows != A.rows || C.cols != B.cols()) {
    throw std::invalid_argument("matmul_tcu_pool tiled: shape mismatch");
  }
  const TiledMatrix<T>* b = &B;
  detail::deal_tiled_strips(
      exec, B, A.rows, opts,
      [&](std::size_t jt, const std::vector<std::uint64_t>& chain) {
        return detail::tiled_strip_task(
            A, b, C, jt,
            opts.affinity ? chain : std::vector<std::uint64_t>{});
      });
  exec.join();
}

/// Ticket-returning no-join variant (epoch pipelines): strip jt's ticket
/// retires exactly when C's columns [jt*s, jt*s+s) are final. The caller
/// owes a join()/join_epoch() before reading C and keeps A, B, C alive
/// until then.
template <typename T>
std::vector<TaskTicket> matmul_tcu_pool_strips(
    PoolExecutor<T>& exec, std::type_identity_t<ConstMatrixView<T>> A,
    const TiledMatrix<T>& B, std::type_identity_t<MatrixView<T>> C,
    PoolMatmulOptions opts = {}) {
  const std::size_t s = B.tile_dim();
  if (B.rows() % s || B.cols() % s) {
    throw std::invalid_argument(
        "matmul_tcu_pool tiled: B logical shape must be tile-aligned");
  }
  if (A.cols != B.rows() || C.rows != A.rows || C.cols != B.cols()) {
    throw std::invalid_argument("matmul_tcu_pool tiled: shape mismatch");
  }
  const TiledMatrix<T>* b = &B;
  return detail::deal_tiled_strips(
      exec, B, A.rows, opts,
      [&](std::size_t jt, const std::vector<std::uint64_t>& chain) {
        return detail::tiled_strip_task(
            A, b, C, jt,
            opts.affinity ? chain : std::vector<std::uint64_t>{});
      });
}

/// Fully tile-major pooled product: dealt A strips, resident B tiles, and
/// written C strips are all contiguous. Any logical shapes — the padding
/// lives in the containers, so no ragged scratch path runs on workers.
/// Joins before returning.
template <typename T>
void matmul_tcu_pool_into(PoolExecutor<T>& exec, const TiledMatrix<T>& A,
                          const TiledMatrix<T>& B, TiledMatrix<T>& C,
                          PoolMatmulOptions opts = {}) {
  if (A.tile_dim() != B.tile_dim() || C.tile_dim() != B.tile_dim()) {
    throw std::invalid_argument(
        "matmul_tcu_pool tiled: operand tile_dim mismatch");
  }
  if (A.cols() != B.rows() || C.rows() != A.rows() || C.cols() != B.cols()) {
    throw std::invalid_argument("matmul_tcu_pool tiled: shape mismatch");
  }
  const TiledMatrix<T>* a = &A;
  const TiledMatrix<T>* b = &B;
  TiledMatrix<T>* c = &C;
  detail::deal_tiled_strips(
      exec, B, A.padded_rows(), opts,
      [&](std::size_t jt, const std::vector<std::uint64_t>& chain) {
        return detail::tiled_strip_task(
            a, b, c, jt,
            opts.affinity ? chain : std::vector<std::uint64_t>{});
      });
  exec.join();
}

}  // namespace tcu::linalg
