#pragma once
// Batched products against a shared right operand.
//
// The model's asymmetry property (§3, property 3) exists precisely for
// this workload: "the same model can be applied to k vectors". Multiplying
// k left operands by one resident B must pay the weight-load latency per
// *tile*, not per batch item — achieved by stacking the batch into a
// single tall left operand. The multi-unit overload deals the stacked
// product's output strips across a `DevicePool`'s worker threads.

#include <algorithm>
#include <type_traits>
#include <vector>

#include "core/pool.hpp"
#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"

namespace tcu::linalg {

namespace detail {

template <typename T>
void validate_batch(const std::vector<Matrix<T>>& batch,
                    ConstMatrixView<T> B) {
  const std::size_t rows = batch.front().rows();
  const std::size_t inner = batch.front().cols();
  for (const auto& item : batch) {
    if (item.rows() != rows || item.cols() != inner) {
      throw std::invalid_argument(
          "matmul_batch_shared_b: heterogeneous batch shapes");
    }
  }
  if (inner != B.rows) {
    throw std::invalid_argument("matmul_batch_shared_b: inner mismatch");
  }
}

/// Stack the batch vertically. Each item is dense row-major, so its whole
/// block is one contiguous std::copy into the stacked operand.
template <typename T>
Matrix<T> stack_batch(const std::vector<Matrix<T>>& batch) {
  const std::size_t rows = batch.front().rows();
  const std::size_t inner = batch.front().cols();
  Matrix<T> stacked(batch.size() * rows, inner);
  for (std::size_t idx = 0; idx < batch.size(); ++idx) {
    std::copy(batch[idx].data(), batch[idx].data() + rows * inner,
              stacked.data() + idx * rows * inner);
  }
  return stacked;
}

/// Split the stacked product back into per-item outputs, one contiguous
/// block copy per item.
template <typename T>
std::vector<Matrix<T>> unstack_batch(const Matrix<T>& product,
                                     std::size_t items, std::size_t rows) {
  const std::size_t width = product.cols();
  std::vector<Matrix<T>> out;
  out.reserve(items);
  for (std::size_t idx = 0; idx < items; ++idx) {
    Matrix<T> item(rows, width);
    const T* src = product.data() + idx * rows * width;
    std::copy(src, src + rows * width, item.data());
    out.push_back(std::move(item));
  }
  return out;
}

}  // namespace detail

/// Multiply each k x s block in `batch` by the shared B. All inputs must
/// have the same shape (rows x B.rows). Returns one output per input;
/// the tensor unit sees a single stacked tall operand per weight tile, so
/// the latency l is charged once per weight tile, never per batch item.
/// B's tiles are residency-tagged by storage address: a previously
/// untagged product here invalidated the device's whole TileCache and
/// re-paid every tile load on the next batched call against the same B,
/// undercounting the §3 asymmetry property the API exists for. Repeated
/// calls now hit resident tiles (given `resident_tiles` capacity), with a
/// single call's charges unchanged. The key-identity caveat of
/// `PoolMatmulOptions::affinity` applies: B must be long-lived, unchanged
/// storage. Callers that mutate B or churn allocations between calls
/// must call `Device::evict_all()` between them (or use the untagged
/// `matmul_tcu` directly) — an address key on recycled storage would
/// otherwise claim residency for different content.
template <typename T>
std::vector<Matrix<T>> matmul_batch_shared_b(
    Device<T>& dev, const std::vector<Matrix<T>>& batch,
    std::type_identity_t<ConstMatrixView<T>> B) {
  if (batch.empty()) return {};
  detail::validate_batch(batch, B);
  Matrix<T> stacked = detail::stack_batch(batch);
  dev.charge_cpu(stacked.rows() * stacked.cols());
  Matrix<T> product(stacked.rows(), B.cols, T{});
  matmul_tcu_resident_into(dev, stacked.view(), B, product.view());
  dev.charge_cpu(product.rows() * product.cols());
  return detail::unstack_batch(product, batch.size(), batch.front().rows());
}

/// Multi-unit batched product over a caller-owned persistent executor:
/// the stacked tall operand's output strips run across the pool's worker
/// threads (ragged shapes are padded in worker-local scratch), and by
/// default the B tiles are dealt with affinity — a steady stream of
/// batches against the same resident B pays each tile's load latency
/// once, not once per round, with the units' `resident_hits` counters
/// recording the savings. Pass `{.affinity = false}` for PR 1's pure
/// least-loaded reload-every-round schedule (the benches use it as the
/// comparison baseline).
template <typename T>
std::vector<Matrix<T>> matmul_batch_shared_b(
    PoolExecutor<T>& exec, const std::vector<Matrix<T>>& batch,
    std::type_identity_t<ConstMatrixView<T>> B,
    PoolMatmulOptions opts = {.affinity = true}) {
  if (batch.empty()) return {};
  detail::validate_batch(batch, B);
  Matrix<T> stacked = detail::stack_batch(batch);
  exec.pool().charge_cpu(stacked.rows() * stacked.cols());
  Matrix<T> product = matmul_tcu_pool(exec, stacked.view(), B, opts);
  exec.pool().charge_cpu(product.rows() * product.cols());
  return detail::unstack_batch(product, batch.size(), batch.front().rows());
}

/// Tile-major batched product: the stacked batch is packed strip-major
/// (TiledMatrix), so every dealt A strip, the resident B tiles, and the
/// written C strips reach the devices as contiguous blocks — the layout
/// real TCU DMA wants. The pack/unpack relayouts are charged as CPU work
/// (pack_cost each way) on top of the stack/unstack copies; the tensor
/// stream covers the padded shapes, so ragged batches charge the padded
/// rows (the row-major overload's scratch path charges the equivalent
/// padding work per call instead). B must outlive the call and carries
/// its tile addresses as residency keys.
template <typename T>
std::vector<Matrix<T>> matmul_batch_shared_b(
    PoolExecutor<T>& exec, const std::vector<Matrix<T>>& batch,
    const TiledMatrix<T>& B, PoolMatmulOptions opts = {.affinity = true}) {
  if (batch.empty()) return {};
  const std::size_t s = B.tile_dim();
  const std::size_t rows = batch.front().rows();
  const std::size_t inner = batch.front().cols();
  for (const auto& item : batch) {
    if (item.rows() != rows || item.cols() != inner) {
      throw std::invalid_argument(
          "matmul_batch_shared_b: heterogeneous batch shapes");
    }
  }
  if (inner != B.rows()) {
    throw std::invalid_argument("matmul_batch_shared_b: inner mismatch");
  }
  Matrix<T> stacked = detail::stack_batch(batch);
  exec.pool().charge_cpu(stacked.rows() * stacked.cols());
  TiledMatrix<T> A = TiledMatrix<T>::pack(stacked.view(), s);
  exec.pool().charge_cpu(A.pack_cost());
  TiledMatrix<T> C(A.rows(), B.cols(), s);
  matmul_tcu_pool_into(exec, A, B, C, opts);
  Matrix<T> product = C.unpack();
  exec.pool().charge_cpu(C.pack_cost());
  exec.pool().charge_cpu(product.rows() * product.cols());
  return detail::unstack_batch(product, batch.size(), batch.front().rows());
}

/// Multi-unit batched product with a throwaway executor per call. Tile
/// affinity still applies across calls — the units remember their
/// resident sets — but thread startup is re-paid; prefer the
/// PoolExecutor overload in serving loops. A deep shared B (chain k > 1)
/// can pass `{.affinity = true, .split_chains = true}` to split the
/// chains at tile granularity when the cache capacity is below k.
template <typename T>
std::vector<Matrix<T>> matmul_batch_shared_b(
    DevicePool<T>& pool, const std::vector<Matrix<T>>& batch,
    std::type_identity_t<ConstMatrixView<T>> B,
    PoolMatmulOptions opts = {.affinity = true}) {
  if (batch.empty()) return {};
  PoolExecutor<T> exec(pool);
  return matmul_batch_shared_b(exec, batch, B, opts);
}

}  // namespace tcu::linalg
