#pragma once
// Batched products against a shared right operand.
//
// The model's asymmetry property (§3, property 3) exists precisely for
// this workload: "the same model can be applied to k vectors". Multiplying
// k left operands by one resident B must pay the weight-load latency per
// *tile*, not per batch item — achieved by stacking the batch into a
// single tall left operand.

#include <type_traits>
#include <vector>

#include "linalg/dense.hpp"

namespace tcu::linalg {

/// Multiply each k x s block in `batch` by the shared B. All inputs must
/// have the same shape (rows x B.rows). Returns one output per input;
/// the tensor unit sees a single stacked tall operand per weight tile.
template <typename T>
std::vector<Matrix<T>> matmul_batch_shared_b(
    Device<T>& dev, const std::vector<Matrix<T>>& batch,
    std::type_identity_t<ConstMatrixView<T>> B) {
  if (batch.empty()) return {};
  const std::size_t rows = batch.front().rows();
  const std::size_t inner = batch.front().cols();
  for (const auto& item : batch) {
    if (item.rows() != rows || item.cols() != inner) {
      throw std::invalid_argument(
          "matmul_batch_shared_b: heterogeneous batch shapes");
    }
  }
  if (inner != B.rows) {
    throw std::invalid_argument("matmul_batch_shared_b: inner mismatch");
  }
  Matrix<T> stacked(batch.size() * rows, inner);
  for (std::size_t idx = 0; idx < batch.size(); ++idx) {
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < inner; ++j) {
        stacked(idx * rows + i, j) = batch[idx](i, j);
      }
    }
  }
  dev.charge_cpu(stacked.rows() * stacked.cols());
  Matrix<T> product = matmul_tcu(dev, stacked.view(), B);
  std::vector<Matrix<T>> out;
  out.reserve(batch.size());
  for (std::size_t idx = 0; idx < batch.size(); ++idx) {
    Matrix<T> item(rows, B.cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < B.cols; ++j) {
        item(i, j) = product(idx * rows + i, j);
      }
    }
    out.push_back(std::move(item));
  }
  dev.charge_cpu(product.rows() * product.cols());
  return out;
}

}  // namespace tcu::linalg
