#pragma once
// Gaussian elimination without pivoting in the (m, l)-TCU model (§4.2).
//
// The input is the sqrt(n) x sqrt(n) augmented matrix `c` of Figure 2: the
// first sqrt(n)-1 rows hold a system of sqrt(n)-1 equations (coefficients
// plus right-hand side in the last column); the last row is all zeros.
//
// `ge_forward_naive` is the Theta(r^3) triple loop of Figure 2.
// `ge_forward_tcu` is the blocked algorithm of Figure 4: the matrix is cut
// into sqrt(m) x sqrt(m) blocks; per outer iteration k the diagonal block
// is eliminated in place (kernel A), the row panel is updated and the
// rescaled strip X' prepared (kernel B), the column panel partially
// eliminated (kernel C), and the whole trailing submatrix updated by
// kernel D — the only TCU step: X'_j is loaded as the weight matrix and
// the entire column panel below the diagonal streams through the unit as
// one tall call, giving Theta(n^{3/2}/sqrt(m) + (n/m) l + n sqrt(m))
// (Theorem 4).
//
// Only the upper triangle (the row-echelon output consumed by back
// substitution) is meaningful after the forward phase; below-diagonal
// storage holds partially-transformed multipliers, exactly as in the
// paper's pseudocode which never zeroes it.

#include <cstdint>
#include <type_traits>
#include <stdexcept>
#include <vector>

#include "core/device.hpp"
#include "core/matrix.hpp"
#include "core/pool.hpp"
#include "linalg/parallel.hpp"

namespace tcu::linalg {

/// Key namespace of the kernel-D weight strips (see make_tile_key): the
/// weight of block column j in outer iteration k is X'_j, freshly
/// rewritten every pivot, so its identity is the *pair* (k, j) — never
/// the storage address, which is reused across pivots with different
/// content. Keys are call-local: `ge_forward_tcu` evicts all residency on
/// entry so a previous elimination's keys can never produce phantom hits.
inline constexpr std::uint16_t kGePanelTag = 0x6E47;

inline constexpr std::uint64_t ge_panel_key(std::size_t kb, std::size_t jb) {
  return make_tile_key(kGePanelTag,
                       (static_cast<std::uint64_t>(kb) << 24) | jb);
}

/// Figure 2: unblocked forward elimination, in place; charges one unit per
/// innermost update to `counters`.
template <typename T>
void ge_forward_naive(MatrixView<T> c, Counters& counters) {
  const std::size_t r = c.rows;
  if (c.cols != r) throw std::invalid_argument("ge_forward: square input");
  std::uint64_t updates = 0;
  for (std::size_t k = 0; k + 2 < r; ++k) {
    for (std::size_t i = k + 1; i + 1 < r; ++i) {
      const T factor = -c(i, k) / c(k, k);
      for (std::size_t j = k + 1; j < r; ++j) {
        c(i, j) += factor * c(k, j);
        ++updates;
      }
    }
  }
  counters.charge_cpu(updates);
}

namespace ge_detail {

// The Figure 4 kernels as pure computations returning their update
// counts; the caller charges the cost to whichever counter owns the work
// (the device on the serial path, the shared CPU on the pool path).

/// Kernel A (Figure 4): eliminate within the diagonal block.
template <typename T>
std::uint64_t kernel_a_ops(MatrixView<T> X) {
  const std::size_t s = X.rows;
  std::uint64_t updates = 0;
  for (std::size_t k = 0; k + 1 < s; ++k) {
    for (std::size_t i = k + 1; i < s; ++i) {
      for (std::size_t j = k + 1; j < s; ++j) {
        X(i, j) -= X(i, k) * X(k, j) / X(k, k);
        ++updates;
      }
    }
  }
  return updates;
}

template <typename T>
void kernel_a(Device<T>& dev, MatrixView<T> X) {
  dev.charge_cpu(kernel_a_ops(X));
}

/// Kernel B (Figure 4): update a row-panel block X using the diagonal
/// block Y, then emit the rescaled strip X' = -X / diag(Y) consumed by
/// kernel D as the TCU weight matrix.
template <typename T>
std::uint64_t kernel_b_ops(MatrixView<T> X,
                           std::type_identity_t<ConstMatrixView<T>> Y,
                           MatrixView<T> Xp) {
  const std::size_t s = X.rows;
  std::uint64_t updates = 0;
  for (std::size_t k = 0; k + 1 < s; ++k) {
    for (std::size_t i = k + 1; i < s; ++i) {
      for (std::size_t j = 0; j < s; ++j) {
        X(i, j) -= Y(i, k) * X(k, j) / Y(k, k);
        ++updates;
      }
    }
  }
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      Xp(i, j) = -X(i, j) / Y(i, i);
      ++updates;
    }
  }
  return updates;
}

template <typename T>
void kernel_b(Device<T>& dev, MatrixView<T> X,
              std::type_identity_t<ConstMatrixView<T>> Y,
              MatrixView<T> Xp) {
  dev.charge_cpu(kernel_b_ops(X, Y, Xp));
}

/// Kernel C (Figure 4): partially eliminate a column-panel block X using
/// the diagonal block Y.
template <typename T>
std::uint64_t kernel_c_ops(MatrixView<T> X,
                           std::type_identity_t<ConstMatrixView<T>> Y) {
  const std::size_t s = X.rows;
  std::uint64_t updates = 0;
  for (std::size_t k = 0; k < s; ++k) {
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = k + 1; j < s; ++j) {
        X(i, j) -= X(i, k) * Y(k, j) / Y(k, k);
        ++updates;
      }
    }
  }
  return updates;
}

template <typename T>
void kernel_c(Device<T>& dev, MatrixView<T> X,
              std::type_identity_t<ConstMatrixView<T>> Y) {
  dev.charge_cpu(kernel_c_ops(X, Y));
}

// Closed-form update counts for the kernels above (the epoch-mode pool
// path needs each task's exact cost before it runs; the *_ops functions
// compute it by doing the work). Verified against the loops:
//   A: sum_{k=0}^{s-2} (s-1-k)^2            = (s-1)s(2s-1)/6
//   B: sum_{k=0}^{s-2} (s-1-k)*s  +  s^2    = s*s(s-1)/2 + s^2
//   C: sum_{k=0}^{s-1} s*(s-1-k)            = s*s(s-1)/2

inline constexpr std::uint64_t kernel_a_cost(std::uint64_t s) {
  return s == 0 ? 0 : (s - 1) * s * (2 * s - 1) / 6;
}

inline constexpr std::uint64_t kernel_b_cost(std::uint64_t s) {
  return s * (s * (s - 1) / 2) + s * s;
}

inline constexpr std::uint64_t kernel_c_cost(std::uint64_t s) {
  return s * (s * (s - 1) / 2);
}

}  // namespace ge_detail

/// Figure 4 / Theorem 4: blocked forward elimination on the TCU, in place.
/// Requires the matrix dimension to be a multiple of sqrt(m) (use
/// `make_augmented` to embed an arbitrary system into such a size).
/// Kernel D tags X'_j as the resident weight of its block column — the
/// Theorem 4 accounting loads each weight once per (k, j) and streams the
/// whole column panel past it, so in the weak model the square calls of
/// one panel share the single load (`Counters::resident_hits` counts the
/// reuse) instead of re-paying l per call as the previously untagged
/// `gemm` did. Tall-mode charges are unchanged (one call, one load).
template <typename T>
void ge_forward_tcu(Device<T>& dev, MatrixView<T> X) {
  const std::size_t r = X.rows;
  const std::size_t s = dev.tile_dim();
  if (X.cols != r) throw std::invalid_argument("ge_forward_tcu: square input");
  if (r % s != 0) {
    throw std::invalid_argument(
        "ge_forward_tcu: dimension must be a multiple of sqrt(m)");
  }
  // The (k, j) keys are call-local: drop any residency a previous
  // elimination left behind so equal keys cannot alias different X'_j.
  dev.evict_all();
  const std::size_t t = r / s;
  Matrix<T> xp(s, r, T{});  // the X' strip of Figure 4
  for (std::size_t kb = 0; kb < t; ++kb) {
    ge_detail::kernel_a(dev, X.subview(kb * s, kb * s, s, s));
    for (std::size_t jb = kb + 1; jb < t; ++jb) {
      ge_detail::kernel_b(dev, X.subview(kb * s, jb * s, s, s),
                          X.subview(kb * s, kb * s, s, s),
                          xp.subview(0, jb * s, s, s));
    }
    for (std::size_t ib = kb + 1; ib < t; ++ib) {
      ge_detail::kernel_c(dev, X.subview(ib * s, kb * s, s, s),
                          X.subview(kb * s, kb * s, s, s));
    }
    if (kb + 1 == t) break;
    // Kernel D: for each trailing block column j, load X'_j as the weight
    // matrix and stream the whole column panel below the diagonal through
    // the tensor unit in one tall call (lines 8-10 of GE-forward).
    const std::size_t top = (kb + 1) * s;
    const std::size_t tall_rows = r - top;
    for (std::size_t jb = kb + 1; jb < t; ++jb) {
      dev.gemm_resident(ge_panel_key(kb, jb),
                        X.subview(top, kb * s, tall_rows, s),
                        xp.subview(0, jb * s, s, s),
                        X.subview(top, jb * s, tall_rows, s),
                        /*accumulate=*/true);
    }
  }
}

/// Theorem 4 across the pool. Outputs and aggregate counters (including
/// resident_hits/latency: every key is unique per (k, j), so dealing
/// cannot create or destroy hits) are bit-identical to `ge_forward_tcu`
/// at every unit count — except `Counters::evictions`, which is
/// schedule-dependent: each active lane's first insertion fills an empty
/// cache without displacing anything, so the aggregate eviction count
/// shrinks with the number of lanes the panels land on.
///
/// `ExecMode::kBarrier` is the historical schedule: per outer iteration
/// k, kernels A-C (the pivot row and column, CPU-bound) run on the
/// submitting thread against the shared CPU counter, each trailing block
/// column's kernel-D update — one tall `gemm_resident` on a panel
/// disjoint from every other j — is one pool task dealt with
/// `submit_affine` on its X'_j chain, and a strict `join()` fences every
/// pivot.
///
/// `ExecMode::kEpoch` (the default) submits the whole elimination as one
/// dependency-ordered round with a single strict join at the end. The
/// per-pivot barrier over-synchronized two ways: it kept every kernel
/// A/B/C on the shared CPU counter (a serial term that Amdahl-bounds the
/// pool at ~1.2x), and it idled lanes on work that only the pivot block
/// column actually orders. Here the kernels are `submit_cpu` unit tasks
/// and each task declares its true predecessors:
///
///   A(k)    after D(k-1, k)                       (the diagonal block)
///   B(k,j)  after A(k), D(k-1, j)                 (row panel + X'_j)
///   C(k,i)  after A(k)          (A retired => D(k-1, k) retired)
///   D(k,j)  after B(k,j), every C(k,i)   (B retired => D(k-1, j)
///           retired, ordering the accumulate chain into column j)
///
/// so pivot k+1's column panel starts the moment its own inputs settle,
/// while trailing columns of pivot k are still streaming on other lanes.
/// The FP schedule per block is unchanged and the D accumulates into each
/// column stay in pivot order, so outputs remain bit-identical to serial.
template <typename T>
void ge_forward_tcu_pool(PoolExecutor<T>& exec, MatrixView<T> X,
                         ExecMode mode = ExecMode::kEpoch) {
  DevicePool<T>& pool = exec.pool();
  const Device<T>& unit0 = pool.unit(0);
  const std::size_t r = X.rows;
  const std::size_t s = unit0.tile_dim();
  if (X.cols != r) throw std::invalid_argument("ge_forward_tcu: square input");
  if (r % s != 0) {
    throw std::invalid_argument(
        "ge_forward_tcu: dimension must be a multiple of sqrt(m)");
  }
  exec.evict_all();  // call-local keys, exactly as on the serial path
  const std::size_t t = r / s;
  Matrix<T> xp(s, r, T{});
  if (mode == ExecMode::kBarrier) {
    for (std::size_t kb = 0; kb < t; ++kb) {
      pool.charge_cpu(
          ge_detail::kernel_a_ops(X.subview(kb * s, kb * s, s, s)));
      for (std::size_t jb = kb + 1; jb < t; ++jb) {
        pool.charge_cpu(ge_detail::kernel_b_ops(
            X.subview(kb * s, jb * s, s, s), X.subview(kb * s, kb * s, s, s),
            xp.subview(0, jb * s, s, s)));
      }
      for (std::size_t ib = kb + 1; ib < t; ++ib) {
        pool.charge_cpu(ge_detail::kernel_c_ops(
            X.subview(ib * s, kb * s, s, s), X.subview(kb * s, kb * s, s, s)));
      }
      if (kb + 1 == t) break;
      const std::size_t top = (kb + 1) * s;
      const std::size_t tall_rows = r - top;
      const std::uint64_t cost =
          detail::strip_tile_cost(unit0, tall_rows, /*affinity=*/true);
      for (std::size_t jb = kb + 1; jb < t; ++jb) {
        const std::uint64_t key = ge_panel_key(kb, jb);
        auto xp_view = xp.view();
        exec.submit_affine(
            cost, {key},
            [X, xp_view, key, top, tall_rows, kb, jb, s](Device<T>& unit) {
              unit.gemm_resident(key, X.subview(top, kb * s, tall_rows, s),
                                 xp_view.subview(0, jb * s, s, s),
                                 X.subview(top, jb * s, tall_rows, s),
                                 /*accumulate=*/true);
            });
      }
      exec.join();
    }
    return;
  }
  const std::uint64_t a_cost = ge_detail::kernel_a_cost(s);
  const std::uint64_t b_cost = ge_detail::kernel_b_cost(s);
  const std::uint64_t c_cost = ge_detail::kernel_c_cost(s);
  std::vector<TaskTicket> d_prev(t);  // D(kb-1, jb), indexed by jb
  auto xp_view = xp.view();
  for (std::size_t kb = 0; kb < t; ++kb) {
    TaskDeps a_deps;
    if (kb > 0) a_deps.after.push_back(d_prev[kb].serial);
    const TaskTicket a = exec.submit_cpu(
        a_cost, std::move(a_deps), [X, kb, s](Device<T>& unit) {
          unit.charge_cpu(
              ge_detail::kernel_a_ops(X.subview(kb * s, kb * s, s, s)));
        });
    std::vector<TaskTicket> b_tickets(t);
    for (std::size_t jb = kb + 1; jb < t; ++jb) {
      TaskDeps b_deps{{a.serial}};
      if (kb > 0) b_deps.after.push_back(d_prev[jb].serial);
      b_tickets[jb] = exec.submit_cpu(
          b_cost, std::move(b_deps), [X, xp_view, kb, jb, s](Device<T>& unit) {
            unit.charge_cpu(ge_detail::kernel_b_ops(
                X.subview(kb * s, jb * s, s, s),
                X.subview(kb * s, kb * s, s, s),
                xp_view.subview(0, jb * s, s, s)));
          });
    }
    std::vector<std::uint64_t> c_serials;
    for (std::size_t ib = kb + 1; ib < t; ++ib) {
      const TaskTicket c = exec.submit_cpu(
          c_cost, TaskDeps{{a.serial}}, [X, kb, ib, s](Device<T>& unit) {
            unit.charge_cpu(ge_detail::kernel_c_ops(
                X.subview(ib * s, kb * s, s, s),
                X.subview(kb * s, kb * s, s, s)));
          });
      c_serials.push_back(c.serial);
    }
    if (kb + 1 == t) break;
    const std::size_t top = (kb + 1) * s;
    const std::size_t tall_rows = r - top;
    const std::uint64_t cost =
        detail::strip_tile_cost(unit0, tall_rows, /*affinity=*/true);
    for (std::size_t jb = kb + 1; jb < t; ++jb) {
      const std::uint64_t key = ge_panel_key(kb, jb);
      TaskDeps d_deps{{b_tickets[jb].serial}};
      d_deps.after.insert(d_deps.after.end(), c_serials.begin(),
                          c_serials.end());
      d_prev[jb] = exec.submit_affine(
          cost, {key}, std::move(d_deps),
          [X, xp_view, key, top, tall_rows, kb, jb, s](Device<T>& unit) {
            unit.gemm_resident(key, X.subview(top, kb * s, tall_rows, s),
                               xp_view.subview(0, jb * s, s, s),
                               X.subview(top, jb * s, tall_rows, s),
                               /*accumulate=*/true);
          });
    }
  }
  exec.join();
}

/// Pool forward elimination with a throwaway executor for the call.
template <typename T>
void ge_forward_tcu_pool(DevicePool<T>& pool, MatrixView<T> X,
                         ExecMode mode = ExecMode::kEpoch) {
  PoolExecutor<T> exec(pool);
  ge_forward_tcu_pool(exec, X, mode);
}

/// Build the (R x R) augmented matrix of Figure 2 for the system A x = b
/// (A: d x d, b: d), embedding into dimension R >= d + 1 by appending
/// trivial equations x_t = 0, so blocked elimination sees a multiple of
/// sqrt(m). The final row is all zeros per the paper's convention.
template <typename T>
Matrix<T> make_augmented(ConstMatrixView<T> A, const std::vector<T>& b,
                         std::size_t R) {
  const std::size_t d = A.rows;
  if (A.cols != d || b.size() != d) {
    throw std::invalid_argument("make_augmented: A must be d x d, b size d");
  }
  if (R < d + 1) throw std::invalid_argument("make_augmented: R too small");
  Matrix<T> c(R, R, T{});
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) c(i, j) = A(i, j);
    c(i, R - 1) = b[i];
  }
  for (std::size_t i = d; i + 1 < R; ++i) c(i, i) = T{1};
  return c;
}

/// Second phase (§4.2): back substitution on the row-echelon augmented
/// matrix; returns the R-1 unknowns. Theta(R^2), charged to `counters`.
template <typename T>
std::vector<T> back_substitute(ConstMatrixView<T> c, Counters& counters) {
  const std::size_t r = c.rows;
  if (c.cols != r || r < 2) {
    throw std::invalid_argument("back_substitute: square input, r >= 2");
  }
  std::vector<T> x(r - 1, T{});
  std::uint64_t ops = 0;
  for (std::size_t ii = r - 1; ii-- > 0;) {
    T acc = c(ii, r - 1);
    for (std::size_t j = ii + 1; j + 1 < r; ++j) {
      acc -= c(ii, j) * x[j];
      ++ops;
    }
    x[ii] = acc / c(ii, ii);
    ++ops;
  }
  counters.charge_cpu(ops);
  return x;
}

}  // namespace tcu::linalg
