#pragma once
// Banded-Toeplitz coefficient convolution on the tensor unit — the §4.7
// kernel behind Theorem 9, generalized over the coefficient type.
//
// The schoolbook product of two coefficient sequences is one matrix
// product. With s = sqrt(m) and both sequences zero-padded to a common
// length n' (a multiple of s):
//
//   * A' ((n'+s-1) x s) holds every length-s window of the zero-padded
//     sequence a: A'[i][t] = a_{i-s+1+t};
//   * B' (s x n'/s) holds b's entries column-major, reversed within each
//     column: B'[t][j] = b_{js+s-1-t};
//   * C' = A' B' accumulates exactly the products a_u b_v with
//     u + v = i + j s, so coefficient h of the convolution is the sum of
//     C' along the anti-diagonal i = h - j s.
//
// `tcu::intmul` instantiates this with int64 limbs (followed by a carry
// pass); `tcu::poly`'s Karatsuba base case instantiates it with double
// coefficients directly. Cost: O(n'^2/sqrt(m) + (n'/m) l).

#include <cstdint>
#include <vector>

#include "core/device.hpp"
#include "core/matrix.hpp"
#include "linalg/dense.hpp"

namespace tcu::linalg {

/// Full linear convolution of `a` and `b` (lengths n'a, n'b >= 1) via one
/// banded-Toeplitz tensor product. Returns 2*n' - 1 coefficients where n'
/// is the common padded length — the tail beyond a.size()+b.size()-1 is
/// exact zeros from the padding.
template <typename T>
std::vector<T> conv_toeplitz_tcu(Device<T>& dev, const std::vector<T>& a,
                                 const std::vector<T>& b) {
  const std::size_t s = dev.tile_dim();
  // Pad both operands to a common length n', a multiple of s.
  const std::size_t raw = std::max<std::size_t>(
      {a.size(), b.size(), std::size_t{1}});
  const std::size_t np = ((raw + s - 1) / s) * s;

  // A': every length-s window of the zero-padded coefficient sequence.
  Matrix<T> ap(np + s - 1, s, T{});
  for (std::size_t i = 0; i < ap.rows(); ++i) {
    for (std::size_t t = 0; t < s; ++t) {
      const std::int64_t u = static_cast<std::int64_t>(i) -
                             static_cast<std::int64_t>(s) + 1 +
                             static_cast<std::int64_t>(t);
      if (u >= 0 && u < static_cast<std::int64_t>(a.size())) {
        ap(i, t) = a[static_cast<std::size_t>(u)];
      }
    }
  }
  // B': coefficients column-major, reversed within each column.
  Matrix<T> bp(s, np / s, T{});
  for (std::size_t t = 0; t < s; ++t) {
    for (std::size_t j = 0; j < np / s; ++j) {
      const std::size_t v = j * s + (s - 1 - t);
      if (v < b.size()) bp(t, j) = b[v];
    }
  }
  dev.charge_cpu(ap.rows() * s + s * (np / s));

  Matrix<T> cp = matmul_tcu(dev, ap.view(), bp.view());

  // Coefficient h of the product = sum of C' over i = h - j*s.
  std::vector<T> coeffs(2 * np - 1, T{});
  for (std::size_t j = 0; j < cp.cols(); ++j) {
    for (std::size_t i = 0; i < cp.rows(); ++i) {
      const std::size_t h = i + j * s;
      if (h < coeffs.size()) coeffs[h] += cp(i, j);
    }
  }
  dev.charge_cpu(cp.rows() * cp.cols() + coeffs.size());
  return coeffs;
}

}  // namespace tcu::linalg
