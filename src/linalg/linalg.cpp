// Anchor translation unit for tcu_linalg: explicit instantiations of the
// template algorithms for the scalar types exercised by tests, benches and
// examples.

#include <complex>
#include <cstdint>

#include "linalg/dense.hpp"
#include "linalg/gauss.hpp"
#include "linalg/sparse.hpp"
#include "linalg/strassen.hpp"

namespace tcu::linalg {

template Matrix<double> matmul_naive<double>(ConstMatrixView<double>,
                                             ConstMatrixView<double>,
                                             Counters&);
template Matrix<std::int64_t> matmul_naive<std::int64_t>(
    ConstMatrixView<std::int64_t>, ConstMatrixView<std::int64_t>, Counters&);
template Matrix<std::complex<double>> matmul_naive<std::complex<double>>(
    ConstMatrixView<std::complex<double>>,
    ConstMatrixView<std::complex<double>>, Counters&);

template void matmul_tcu_into<double>(Device<double>&,
                                      ConstMatrixView<double>,
                                      ConstMatrixView<double>,
                                      MatrixView<double>);
template void matmul_tcu_into<std::int64_t>(Device<std::int64_t>&,
                                            ConstMatrixView<std::int64_t>,
                                            ConstMatrixView<std::int64_t>,
                                            MatrixView<std::int64_t>);

template Matrix<double> matmul_strassen_tcu<double>(Device<double>&,
                                                    ConstMatrixView<double>,
                                                    ConstMatrixView<double>,
                                                    StrassenOptions);

template class SparseMatrix<double>;
template class SparseMatrix<std::int64_t>;

template void ge_forward_naive<double>(MatrixView<double>, Counters&);
template void ge_forward_tcu<double>(Device<double>&, MatrixView<double>);

}  // namespace tcu::linalg
