#pragma once
// Conveniences built on the §4.2 elimination kernels: linear solve and
// determinants. Both run the blocked Figure 4 forward phase (Theorem 4
// cost) and finish with Theta(n) / Theta(n^2) CPU epilogues.

#include <type_traits>
#include <vector>

#include "linalg/gauss.hpp"

namespace tcu::linalg {

/// Solve A x = b (A: d x d diagonally dominant / no-pivot-safe) on the
/// device: augmented embedding, blocked forward phase, back substitution.
template <typename T>
std::vector<T> solve_tcu(Device<T>& dev,
                         std::type_identity_t<ConstMatrixView<T>> A,
                         const std::vector<T>& b) {
  const std::size_t d = A.rows;
  if (A.cols != d || b.size() != d) {
    throw std::invalid_argument("solve_tcu: A must be d x d, b of size d");
  }
  const std::size_t s = dev.tile_dim();
  const std::size_t R = ((d + 1 + s - 1) / s) * s;
  Matrix<T> c = make_augmented<T>(A, b, R);
  dev.charge_cpu(R * R);
  ge_forward_tcu(dev, c.view());
  auto x = back_substitute<T>(c.view(), dev.counters());
  x.resize(d);
  dev.charge_cpu(d);
  return x;
}

/// Determinant of a no-pivot-safe matrix: the forward phase leaves the
/// pivots on the diagonal; the determinant is their product. The matrix
/// is embedded in an identity-padded multiple of sqrt(m), which leaves
/// the determinant unchanged.
template <typename T>
T determinant_tcu(Device<T>& dev,
                  std::type_identity_t<ConstMatrixView<T>> A) {
  const std::size_t d = A.rows;
  if (A.cols != d || d == 0) {
    throw std::invalid_argument("determinant_tcu: square non-empty input");
  }
  const std::size_t s = dev.tile_dim();
  const std::size_t R = ((d + s - 1) / s) * s;
  Matrix<T> work(R, R, T{});
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) work(i, j) = A(i, j);
  }
  for (std::size_t i = d; i < R; ++i) work(i, i) = T{1};
  dev.charge_cpu(R * R);
  ge_forward_tcu(dev, work.view());
  T det{1};
  for (std::size_t i = 0; i < d; ++i) det *= work(i, i);
  dev.charge_cpu(d);
  return det;
}

}  // namespace tcu::linalg
