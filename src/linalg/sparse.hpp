#pragma once
// Output-sensitive sparse matrix multiplication on the TCU (Theorem 3).
//
// The paper follows Jacob & Stoeckel [12]: hash the rows of A and the
// columns of B down to Theta(sqrt(Z)) buckets, multiply the *compressed
// dense* matrices with the fast TCU kernel, and recover the Z output
// non-zeros from the bucketed sums. We implement the recovery with the
// standard index-encoding trick: alongside the plain compressed product we
// compute row-index-weighted, column-index-weighted and randomly-weighted
// products; a bucket that received exactly one output non-zero yields its
// (i, j, value) triple directly, and the random weighting detects impure
// buckets. Fresh hash functions are drawn per round and already-recovered
// entries are subtracted, so the unresolved set shrinks geometrically; if
// the compression width proves too small (bad Z estimate) it doubles —
// making the routine correct with any (or no) Z hint while preserving
// Theorem 3's cost profile when the hint is accurate.

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "linalg/dense.hpp"
#include "linalg/strassen.hpp"
#include "util/rng.hpp"

namespace tcu::linalg {

template <typename T>
struct SparseEntry {
  std::size_t row = 0;
  std::size_t col = 0;
  T value{};
};

/// Coordinate-format sparse matrix with sorted, deduplicated entries.
template <typename T>
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  static SparseMatrix from_entries(std::size_t rows, std::size_t cols,
                                   std::vector<SparseEntry<T>> entries) {
    SparseMatrix out(rows, cols);
    std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
      return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
    for (auto& e : entries) {
      if (e.row >= rows || e.col >= cols) {
        throw std::out_of_range("SparseMatrix: entry out of range");
      }
      if (!out.entries_.empty() && out.entries_.back().row == e.row &&
          out.entries_.back().col == e.col) {
        out.entries_.back().value += e.value;
      } else {
        out.entries_.push_back(e);
      }
    }
    // Drop explicit zeros produced by merging.
    std::erase_if(out.entries_, [](const auto& e) { return e.value == T{}; });
    return out;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return entries_.size(); }
  const std::vector<SparseEntry<T>>& entries() const { return entries_; }

  Matrix<T> to_dense() const {
    Matrix<T> out(rows_, cols_, T{});
    for (const auto& e : entries_) out(e.row, e.col) += e.value;
    return out;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<SparseEntry<T>> entries_;
};

/// RAM baseline: row-by-row accumulation (classical Gustavson style),
/// charging one unit per elementary product plus the scan of the inputs.
template <typename T>
SparseMatrix<T> spmm_naive(const SparseMatrix<T>& A, const SparseMatrix<T>& B,
                           Counters& counters) {
  if (A.cols() != B.rows()) {
    throw std::invalid_argument("spmm_naive: inner dimensions differ");
  }
  // Bucket B's entries by row for O(1) joins.
  std::vector<std::vector<SparseEntry<T>>> b_by_row(B.rows());
  for (const auto& e : B.entries()) b_by_row[e.row].push_back(e);
  counters.charge_cpu(B.nnz() + B.rows());

  std::map<std::pair<std::size_t, std::size_t>, T> acc;
  std::uint64_t flops = 0;
  for (const auto& ea : A.entries()) {
    for (const auto& eb : b_by_row[ea.col]) {
      acc[{ea.row, eb.col}] += ea.value * eb.value;
      ++flops;
    }
  }
  counters.charge_cpu(A.nnz() + flops);

  std::vector<SparseEntry<T>> out;
  out.reserve(acc.size());
  for (const auto& [key, value] : acc) {
    if (value != T{}) out.push_back({key.first, key.second, value});
  }
  counters.charge_cpu(acc.size());
  return SparseMatrix<T>::from_entries(A.rows(), B.cols(), std::move(out));
}

struct SpmmOptions {
  std::size_t z_hint = 0;     ///< expected output non-zeros (0 = auto-grow)
  std::uint64_t seed = 42;
  int max_rounds = 64;        ///< safety cap on recovery rounds
  bool use_strassen = false;  ///< Theorem 1 kernel for the dense products
};

/// Theorem 3: output-sensitive sparse multiplication via compressed dense
/// products on the tensor unit. Works for any inputs; matches the paper's
/// bound when the output is balanced and z_hint ~ Z.
template <typename T>
SparseMatrix<T> spmm_tcu(Device<T>& dev, const SparseMatrix<T>& A,
                         const SparseMatrix<T>& B, SpmmOptions opts = {}) {
  if (A.cols() != B.rows()) {
    throw std::invalid_argument("spmm_tcu: inner dimensions differ");
  }
  const std::size_t q = A.cols();
  const std::size_t s = dev.tile_dim();
  util::Xoshiro256 rng(opts.seed);

  // Compression width: d buckets per side, a multiple of s, at least
  // 2*sqrt(Z) so a random bucket pair is pure with constant probability.
  auto width_for = [&](std::size_t z) {
    std::size_t target = 2 * static_cast<std::size_t>(
                                 std::ceil(std::sqrt(static_cast<double>(
                                     std::max<std::size_t>(z, 1)))));
    return ((target + s - 1) / s) * s;
  };
  std::size_t z_guess = opts.z_hint ? opts.z_hint
                                    : std::max<std::size_t>(
                                          dev.m(), A.nnz() + B.nnz());
  std::size_t d = width_for(z_guess);

  std::map<std::pair<std::size_t, std::size_t>, T> recovered;
  const int weight_cap = 1 << 10;  // keeps integer instantiations overflow-free

  int stagnant_rounds = 0;
  for (int round = 0; round < opts.max_rounds; ++round) {
    // Fresh hashes and verification weights.
    std::vector<std::size_t> h(A.rows()), g(B.cols());
    std::vector<T> u(A.rows()), v(B.cols());
    for (std::size_t i = 0; i < A.rows(); ++i) {
      h[i] = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(d) - 1));
      u[i] = static_cast<T>(rng.uniform_int(1, weight_cap));
    }
    for (std::size_t j = 0; j < B.cols(); ++j) {
      g[j] = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(d) - 1));
      v[j] = static_cast<T>(rng.uniform_int(1, weight_cap));
    }
    dev.charge_cpu(2 * (A.rows() + B.cols()));

    // Compressed left operands: plain, row-index-weighted, random-weighted.
    Matrix<T> a_plain(d, q, T{}), a_idx(d, q, T{}), a_rand(d, q, T{});
    for (const auto& e : A.entries()) {
      a_plain(h[e.row], e.col) += e.value;
      a_idx(h[e.row], e.col) += static_cast<T>(e.row + 1) * e.value;
      a_rand(h[e.row], e.col) += u[e.row] * e.value;
    }
    // Compressed right operands: plain, column-index-weighted, random.
    Matrix<T> b_plain(q, d, T{}), b_idx(q, d, T{}), b_rand(q, d, T{});
    for (const auto& e : B.entries()) {
      b_plain(e.row, g[e.col]) += e.value;
      b_idx(e.row, g[e.col]) += static_cast<T>(e.col + 1) * e.value;
      b_rand(e.row, g[e.col]) += v[e.col] * e.value;
    }
    dev.charge_cpu(3 * (A.nnz() + B.nnz()) + 6 * d * q);

    auto product = [&](const Matrix<T>& left, const Matrix<T>& right) {
      if (opts.use_strassen && d == q) {
        return matmul_strassen_tcu(dev, left.view(), right.view());
      }
      return matmul_tcu(dev, left.view(), right.view());
    };
    Matrix<T> d_val = product(a_plain, b_plain);
    Matrix<T> d_row = product(a_idx, b_plain);
    Matrix<T> d_col = product(a_plain, b_idx);
    Matrix<T> d_ver = product(a_rand, b_rand);

    // Subtract the contribution of already-recovered entries.
    for (const auto& [key, value] : recovered) {
      const auto [i, j] = key;
      d_val(h[i], g[j]) -= value;
      d_row(h[i], g[j]) -= static_cast<T>(i + 1) * value;
      d_col(h[i], g[j]) -= static_cast<T>(j + 1) * value;
      d_ver(h[i], g[j]) -= u[i] * v[j] * value;
    }
    dev.charge_cpu(4 * recovered.size());

    // Scan buckets: a pure bucket yields (i, j, value) directly. For
    // floating-point instantiations "zero" means below accumulation noise,
    // scaled by the magnitude each weighted product can reach.
    auto is_zero = [&](T x, double scale) {
      if constexpr (std::is_floating_point_v<T>) {
        return std::abs(x) <= 1e-6 * scale;
      } else {
        (void)scale;
        return x == T{};
      }
    };
    const double row_scale = static_cast<double>(A.rows());
    const double col_scale = static_cast<double>(B.cols());
    const double ver_scale = static_cast<double>(weight_cap) * weight_cap;
    std::size_t found = 0;
    bool residual_nonzero = false;
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = 0; b < d; ++b) {
        const T val = d_val(a, b);
        if (is_zero(val, 1.0) && is_zero(d_row(a, b), row_scale) &&
            is_zero(d_col(a, b), col_scale) &&
            is_zero(d_ver(a, b), ver_scale)) {
          continue;
        }
        residual_nonzero = true;
        if (is_zero(val, 1.0)) continue;  // cancelled or impure; retry
        const double fi = static_cast<double>(d_row(a, b)) /
                              static_cast<double>(val) - 1.0;
        const double fj = static_cast<double>(d_col(a, b)) /
                              static_cast<double>(val) - 1.0;
        const double ri = std::round(fi);
        const double rj = std::round(fj);
        if (std::abs(fi - ri) > 1e-6 || std::abs(fj - rj) > 1e-6) continue;
        if (ri < 0 || rj < 0 || ri >= static_cast<double>(A.rows()) ||
            rj >= static_cast<double>(B.cols())) {
          continue;
        }
        const auto i = static_cast<std::size_t>(ri);
        const auto j = static_cast<std::size_t>(rj);
        if (h[i] != a || g[j] != b) continue;
        // Random-weight verification of bucket purity.
        const T expect = u[i] * v[j] * val;
        if constexpr (std::is_floating_point_v<T>) {
          const double scale = std::max(1.0, std::abs(static_cast<double>(expect)));
          if (std::abs(static_cast<double>(d_ver(a, b) - expect)) >
              1e-6 * scale) {
            continue;
          }
        } else {
          if (d_ver(a, b) != expect) continue;
        }
        if (recovered.emplace(std::make_pair(i, j), val).second) ++found;
      }
    }
    dev.charge_cpu(d * d);

    if (!residual_nonzero) break;  // every output entry accounted for
    if (found == 0) {
      // Likely too many collisions: widen the compression.
      if (++stagnant_rounds >= 2) {
        d = width_for(4 * std::max<std::size_t>(recovered.size() + 1,
                                                z_guess));
        z_guess *= 4;
        stagnant_rounds = 0;
      }
    } else {
      stagnant_rounds = 0;
    }
    if (round + 1 == opts.max_rounds) {
      throw std::runtime_error("spmm_tcu: recovery did not converge; "
                               "pass a larger z_hint");
    }
  }

  std::vector<SparseEntry<T>> out;
  out.reserve(recovered.size());
  for (const auto& [key, value] : recovered) {
    out.push_back({key.first, key.second, value});
  }
  dev.charge_cpu(recovered.size());
  return SparseMatrix<T>::from_entries(A.rows(), B.cols(), std::move(out));
}

}  // namespace tcu::linalg
