#pragma once
// Scan and reduction on the tensor unit.
//
// The paper's related-work section ([9], Dakkak et al., ICS 2019) shows
// that even memory-bound primitives map onto matrix-multiplication
// hardware; these are the (m, l)-TCU formulations of their kernels, and
// they round out the library's algorithm catalogue:
//
//   * reduce: arrange the n inputs as an (n/s) x s matrix and multiply by
//     a ones column tile — each tall call collapses a factor s, so
//     O(n + l log_m n) total;
//   * inclusive scan: one tall product with the upper-triangular ones
//     tile yields all within-row prefix sums; the row totals are scanned
//     recursively and broadcast back, again O(n + l log_m n).
//
// Both charge their CPU glue exactly and match std::* oracles in tests.

#include <cstdint>
#include <vector>

#include "core/device.hpp"

namespace tcu::primitives {

/// Sum of all elements via repeated tall products with a ones tile.
double reduce_tcu(Device<double>& dev, const std::vector<double>& data);

/// RAM baseline: sequential summation, Theta(n) charged.
double reduce_ram(const std::vector<double>& data, Counters& counters);

/// Inclusive prefix sum via the triangular-ones tile (Dakkak et al. style).
std::vector<double> inclusive_scan_tcu(Device<double>& dev,
                                       const std::vector<double>& data);

/// RAM baseline: sequential scan, Theta(n) charged.
std::vector<double> inclusive_scan_ram(const std::vector<double>& data,
                                       Counters& counters);

}  // namespace tcu::primitives
