#include "primitives/primitives.hpp"

#include <stdexcept>

#include "check/contract.hpp"

namespace tcu::primitives {

namespace {

/// One reduction round: collapse chunks of s values into their sums with
/// a single tall call against a ones tile (only the first output column
/// is consumed).
std::vector<double> reduce_round(Device<double>& dev,
                                 const std::vector<double>& data) {
  const std::size_t s = dev.tile_dim();
  const std::size_t rows = (data.size() + s - 1) / s;
  Matrix<double> x(rows, s, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) x(i / s, i % s) = data[i];
  Matrix<double> ones(s, s, 0.0);
  for (std::size_t k = 0; k < s; ++k) ones(k, 0) = 1.0;
  Matrix<double> out(rows, s, 0.0);
  // The ones/triangular tiles below are rebuilt on the stack per call;
  // stable symbolic keys are a possible future win, not a contract.
  check::AllowUntaggedClobber allow_clobber;
  // tcu-lint: untagged-ok(transient stack-built ones tile)
  dev.gemm(x.view(), ones.view(), out.view());
  std::vector<double> sums(rows);
  for (std::size_t r = 0; r < rows; ++r) sums[r] = out(r, 0);
  dev.charge_cpu(data.size() + s + rows);
  return sums;
}

}  // namespace

double reduce_tcu(Device<double>& dev, const std::vector<double>& data) {
  if (data.empty()) return 0.0;
  std::vector<double> cur = data;
  while (cur.size() > 1) cur = reduce_round(dev, cur);
  return cur[0];
}

double reduce_ram(const std::vector<double>& data, Counters& counters) {
  double acc = 0.0;
  for (double v : data) acc += v;
  counters.charge_cpu(data.size());
  return acc;
}

std::vector<double> inclusive_scan_tcu(Device<double>& dev,
                                       const std::vector<double>& data) {
  if (data.empty()) return {};
  const std::size_t s = dev.tile_dim();
  const std::size_t n = data.size();
  if (n <= s) {
    // One padded row against the triangular tile.
    Matrix<double> x(1, s, 0.0);
    for (std::size_t i = 0; i < n; ++i) x(0, i) = data[i];
    Matrix<double> tri(s, s, 0.0);
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = i; j < s; ++j) tri(i, j) = 1.0;
    }
    Matrix<double> out(1, s, 0.0);
    check::AllowUntaggedClobber allow_clobber;
    // tcu-lint: untagged-ok(transient stack-built triangular tile)
    dev.gemm(x.view(), tri.view(), out.view());
    std::vector<double> result(n);
    for (std::size_t i = 0; i < n; ++i) result[i] = out(0, i);
    dev.charge_cpu(2 * n + s * s);
    return result;
  }

  // Row-wise prefix sums of the (n/s) x s arrangement in one tall call.
  const std::size_t rows = (n + s - 1) / s;
  Matrix<double> x(rows, s, 0.0);
  for (std::size_t i = 0; i < n; ++i) x(i / s, i % s) = data[i];
  Matrix<double> tri(s, s, 0.0);
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = i; j < s; ++j) tri(i, j) = 1.0;
  }
  Matrix<double> pref(rows, s, 0.0);
  check::AllowUntaggedClobber allow_clobber;
  // tcu-lint: untagged-ok(transient stack-built triangular tile)
  dev.gemm(x.view(), tri.view(), pref.view());
  dev.charge_cpu(n + s * s);

  // Scan of the row totals gives per-row offsets (exclusive).
  std::vector<double> totals(rows);
  for (std::size_t r = 0; r < rows; ++r) totals[r] = pref(r, s - 1);
  dev.charge_cpu(rows);
  std::vector<double> scanned = inclusive_scan_tcu(dev, totals);

  std::vector<double> result(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = i / s;
    const double offset = r == 0 ? 0.0 : scanned[r - 1];
    result[i] = pref(r, i % s) + offset;
  }
  dev.charge_cpu(n);
  return result;
}

std::vector<double> inclusive_scan_ram(const std::vector<double>& data,
                                       Counters& counters) {
  std::vector<double> out(data.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    acc += data[i];
    out[i] = acc;
  }
  counters.charge_cpu(data.size());
  return out;
}

}  // namespace tcu::primitives
