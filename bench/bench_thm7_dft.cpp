// THM7 — DFT, O((n + l) log_m n).
//
// Power-of-two and smooth lengths across m and l; reports the ratio vs
// the closed form, the tensor-call count (latency is paid per recursion
// level, not per sub-DFT) and the speedup over the radix-2 RAM FFT.

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "dft/dft.hpp"

namespace {

using tcu::dft::Complex;
using tcu::dft::CVec;

CVec random_signal(std::size_t n, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  CVec x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return x;
}

void BM_DftTcu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  auto x = random_signal(n, 1200 + n + m);
  tcu::Device<Complex> dev({.m = m, .latency = ell});
  for (auto _ : state) {
    dev.reset();
    auto y = tcu::dft::dft_tcu(dev, x);
    benchmark::DoNotOptimize(y.data());
  }
  tcu::bench::report(state, dev.counters(),
                     tcu::costs::thm7_dft(static_cast<double>(n),
                                          static_cast<double>(m),
                                          static_cast<double>(ell)));
  if ((n & (n - 1)) == 0) {
    tcu::Counters ram;
    (void)tcu::dft::fft_ram(x, ram);
    state.counters["fft_ram_time"] = static_cast<double>(ram.time());
    state.counters["speedup_vs_fft"] =
        static_cast<double>(ram.time()) /
        static_cast<double>(dev.counters().time());
  }
}

}  // namespace

BENCHMARK(BM_DftTcu)
    ->ArgsProduct({{1024, 4096, 16384, 65536}, {64, 256}, {0, 4096}})
    ->ArgNames({"n", "m", "l"})
    ->Iterations(1);

BENCHMARK_MAIN();
