// PRIM — scan and reduction on the tensor unit (the [9]-style kernels
// the paper cites as prior TCU algorithms).
//
// Both are O(n + l log_m n); the interesting column is the latency share:
// a tall-call formulation pays l per reduction round, not per chunk.

#include "bench_common.hpp"
#include "primitives/primitives.hpp"

namespace {

void BM_ReduceTcu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  tcu::util::Xoshiro256 rng(3400 + n);
  std::vector<double> data(n);
  for (auto& v : data) v = rng.uniform(-1, 1);
  tcu::Device<double> dev({.m = m, .latency = ell});
  double sum = 0;
  for (auto _ : state) {
    dev.reset();
    sum = tcu::primitives::reduce_tcu(dev, data);
    benchmark::DoNotOptimize(sum);
  }
  tcu::Counters ram;
  (void)tcu::primitives::reduce_ram(data, ram);
  tcu::bench::report(state, dev.counters(), static_cast<double>(n));
  state.counters["ram_time"] = static_cast<double>(ram.time());
}

void BM_ScanTcu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  tcu::util::Xoshiro256 rng(3500 + n);
  std::vector<double> data(n);
  for (auto& v : data) v = rng.uniform(-1, 1);
  tcu::Device<double> dev({.m = m, .latency = ell});
  for (auto _ : state) {
    dev.reset();
    auto out = tcu::primitives::inclusive_scan_tcu(dev, data);
    benchmark::DoNotOptimize(out.data());
  }
  tcu::Counters ram;
  (void)tcu::primitives::inclusive_scan_ram(data, ram);
  tcu::bench::report(state, dev.counters(), static_cast<double>(n));
  state.counters["ram_time"] = static_cast<double>(ram.time());
}

}  // namespace

BENCHMARK(BM_ReduceTcu)
    ->ArgsProduct({{4096, 65536, 1048576}, {256}, {0, 1024}})
    ->ArgNames({"n", "m", "l"})
    ->Iterations(1);
BENCHMARK(BM_ScanTcu)
    ->ArgsProduct({{4096, 65536, 1048576}, {256}, {0, 1024}})
    ->ArgNames({"n", "m", "l"})
    ->Iterations(1);

BENCHMARK_MAIN();
