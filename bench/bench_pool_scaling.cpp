// POOL1 — wall-clock scaling of the worker-thread pool runtime.
//
// A 1024^2 dense Theorem 2 multiplication on a DevicePool of p = 1/2/4/8
// units, where every strip really executes on its unit's OS thread
// (PoolExecutor). Reports, per p:
//   wall time            — google-benchmark's real time of the run;
//   wall_speedup         — wall time of the serial single-device run
//                          (timed in this same instance) / pool wall
//                          time (needs >= p physical cores to
//                          approach p);
//   sim_speedup          — single-unit simulated time / pool makespan,
//                          the model-level speedup (machine-independent);
//   counters_match       — 1 iff the aggregated pool counters are
//                          bit-identical to the serial schedule's, i.e.
//                          real threading changed nothing simulated.

#include <chrono>

#include "bench_common.hpp"
#include "core/pool.hpp"
#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"

namespace {

constexpr std::size_t kDim = 1024;
constexpr std::size_t kM = 4096;  // sqrt(m) = 64 -> 16 output strips
constexpr std::uint64_t kEll = 1024;

void BM_PoolScaling(benchmark::State& state) {
  const auto units = static_cast<std::size_t>(state.range(0));
  auto a = tcu::bench::random_matrix(kDim, kDim, 9100);
  auto b = tcu::bench::random_matrix(kDim, kDim, 9200);

  // Serial reference schedule, timed here so every instance carries its
  // own wall baseline (no cross-instance coupling under filters).
  tcu::Device<double> single({.m = kM, .latency = kEll});
  const auto s0 = std::chrono::steady_clock::now();
  auto c_single = tcu::linalg::matmul_tcu(single, a.view(), b.view());
  const auto s1 = std::chrono::steady_clock::now();
  const double serial_wall_seconds =
      std::chrono::duration<double>(s1 - s0).count();

  tcu::DevicePool<double> pool(units, {.m = kM, .latency = kEll});
  double wall_seconds = 0.0;
  for (auto _ : state) {
    pool.reset();
    const auto t0 = std::chrono::steady_clock::now();
    auto c = tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());
    const auto t1 = std::chrono::steady_clock::now();
    wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    benchmark::DoNotOptimize(c.data());
  }

  const tcu::Counters agg = pool.aggregate();
  const tcu::Counters& ref = single.counters();
  const bool match = agg.tensor_calls == ref.tensor_calls &&
                     agg.tensor_rows == ref.tensor_rows &&
                     agg.tensor_time == ref.tensor_time &&
                     agg.tensor_macs == ref.tensor_macs &&
                     agg.latency_time == ref.latency_time;

  state.counters["units"] = static_cast<double>(units);
  state.counters["wall_seconds"] = wall_seconds;
  state.counters["wall_speedup"] = serial_wall_seconds / wall_seconds;
  state.counters["sim_speedup"] =
      static_cast<double>(ref.time()) / static_cast<double>(pool.makespan());
  state.counters["counters_match"] = match ? 1.0 : 0.0;
  tcu::bench::report(state, agg, static_cast<double>(ref.time()));
}

}  // namespace

BENCHMARK(BM_PoolScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgNames({"units"})
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK_MAIN();
