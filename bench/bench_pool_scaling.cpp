// POOL1 — scaling and scheduling of the worker-thread pool runtime.
//
// Two experiments, both emitted to BENCH_pool_scaling.json:
//
// BM_PoolScaling: a dense Theorem 2 multiplication repeated over several
// rounds on a DevicePool of p = 1/2/4/8 units, all rounds through ONE
// persistent PoolExecutor (join() reseeds the projections, so no thread
// churn between rounds). Reports:
//   wall time            — google-benchmark's real time of the run;
//   wall_speedup         — serial single-device wall time / pool wall
//                          time (needs >= p physical cores to approach p);
//   sim_speedup          — single-unit simulated time / pool makespan,
//                          the model-level speedup (machine-independent);
//                          exactly p here: the strips divide evenly;
//   counters_match       — 1 iff the aggregated pool counters are
//                          bit-identical to the serial schedule's.
//
// BM_BatchAffinity: a steady stream of batched products against one
// shared B (the §3 asymmetry workload), comparing PR 1's pure
// least-loaded dealer — which re-loads every B tile each round — against
// the tile-affinity scheduler, which routes each output strip back to the
// lane whose unit still holds its tile and skips the re-load latency
// (Device::gemm_resident). Affinity strictly reduces the simulated
// latency cost; the resident-hit counters prove the savings.

#include <chrono>

#include "bench_common.hpp"
#include "core/pool.hpp"
#include "linalg/batch.hpp"
#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"

namespace {

tcu::bench::PoolBenchJson json_out("pool_scaling");

// 8 or 16 output strips: both divide every benched unit count, so the
// greedy schedule balances exactly and sim_speedup == p.
std::size_t dim() { return tcu::bench::bench_tiny() ? 512 : 1024; }
constexpr std::size_t kM = 4096;  // sqrt(m) = 64 -> 16 output strips
constexpr std::uint64_t kEll = 1024;
constexpr int kRounds = 3;

void BM_PoolScaling(benchmark::State& state) {
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t d = dim();
  auto a = tcu::bench::random_matrix(d, d, 9100);
  auto b = tcu::bench::random_matrix(d, d, 9200);

  // Serial reference schedule (same number of rounds), timed here so
  // every instance carries its own wall baseline.
  tcu::Device<double> single({.m = kM, .latency = kEll});
  const auto s0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRounds; ++r) {
    auto c_single = tcu::linalg::matmul_tcu(single, a.view(), b.view());
    benchmark::DoNotOptimize(c_single.data());
  }
  const auto s1 = std::chrono::steady_clock::now();
  const double serial_wall_seconds =
      std::chrono::duration<double>(s1 - s0).count();

  tcu::DevicePool<double> pool(units, {.m = kM, .latency = kEll});
  double wall_seconds = 0.0;
  for (auto _ : state) {
    pool.reset();
    const auto t0 = std::chrono::steady_clock::now();
    // One executor for all rounds: thread startup is paid once, and each
    // join() reseeds the greedy projections for the next round.
    tcu::PoolExecutor<double> exec(pool);
    for (int r = 0; r < kRounds; ++r) {
      auto c = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());
      benchmark::DoNotOptimize(c.data());
    }
    const auto t1 = std::chrono::steady_clock::now();
    wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  }

  const tcu::Counters agg = pool.aggregate();
  const tcu::Counters& ref = single.counters();
  const bool match = tcu::bench::counters_match_serial(agg, ref);
  const double sim_speedup =
      static_cast<double>(ref.time()) / static_cast<double>(pool.makespan());

  state.counters["units"] = static_cast<double>(units);
  state.counters["wall_seconds"] = wall_seconds;
  state.counters["wall_speedup"] = serial_wall_seconds / wall_seconds;
  state.counters["sim_speedup"] = sim_speedup;
  state.counters["counters_match"] = match ? 1.0 : 0.0;
  tcu::bench::report(state, agg, static_cast<double>(ref.time()));

  json_out.add({.name = "pool_scaling",
                .p = units,
                .sim_cost = pool.makespan(),
                .sim_speedup = sim_speedup,
                .counters_match = match,
                .wall_ns = tcu::bench::pool_wall_ns(pool),
                .extra = {}});
}

void BM_BatchAffinity(benchmark::State& state) {
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t s = 64;  // sqrt(kM)
  // One output tile per unit: after round 1 every unit holds exactly the
  // tile its strip reuses, so every later round is all hits.
  const std::size_t out_tiles = units;
  const std::size_t batch_items = 8;
  const int rounds = tcu::bench::bench_tiny() ? 4 : 16;

  // B is one tile row (inner dim = sqrt(m)): each output strip is a
  // single-tile chain, the §3 "apply the same model to k vectors" shape.
  auto b = tcu::bench::random_matrix(s, out_tiles * s, 9300);
  std::vector<tcu::Matrix<double>> batch;
  for (std::size_t t = 0; t < batch_items; ++t) {
    batch.push_back(tcu::bench::random_matrix(s, s, 9400 + t));
  }

  // PR 1 dealer: the same batched API with affinity off — least-loaded
  // only, every round re-loads every tile.
  tcu::DevicePool<double> pool_plain(units, {.m = kM, .latency = kEll});
  {
    tcu::PoolExecutor<double> exec(pool_plain);
    for (int r = 0; r < rounds; ++r) {
      auto out = tcu::linalg::matmul_batch_shared_b(exec, batch, b.view(),
                                                    {.affinity = false});
      benchmark::DoNotOptimize(out.data());
    }
  }

  // Affinity dealer: strips chase their resident tiles across rounds.
  tcu::DevicePool<double> pool_affine(units, {.m = kM, .latency = kEll});
  double wall_seconds = 0.0;
  for (auto _ : state) {
    pool_affine.reset();
    const auto t0 = std::chrono::steady_clock::now();
    tcu::PoolExecutor<double> exec(pool_affine);
    for (int r = 0; r < rounds; ++r) {
      auto out = tcu::linalg::matmul_batch_shared_b(exec, batch, b.view());
      benchmark::DoNotOptimize(out.data());
    }
    const auto t1 = std::chrono::steady_clock::now();
    wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  }

  const tcu::Counters affine = pool_affine.aggregate();
  const tcu::Counters plain = pool_plain.aggregate();
  // Affinity must strictly reduce the simulated latency cost, the saving
  // must be exactly the recorded hits times l, and — the PR 2 regression
  // guard — the capacity-1 single-tile-chain hit count must stay at its
  // closed form: every strip hits its lane's tile in every round after
  // the first.
  const std::uint64_t expected_hits =
      static_cast<std::uint64_t>(units) * (rounds - 1);
  const bool latency_reduced =
      affine.latency_time < plain.latency_time &&
      affine.latency_time + affine.latency_saved == plain.latency_time &&
      affine.tensor_macs == plain.tensor_macs &&
      affine.resident_hits == expected_hits;

  state.counters["units"] = static_cast<double>(units);
  state.counters["wall_seconds"] = wall_seconds;
  state.counters["latency_plain"] = static_cast<double>(plain.latency_time);
  state.counters["latency_affine"] = static_cast<double>(affine.latency_time);
  state.counters["resident_hits"] = static_cast<double>(affine.resident_hits);
  state.counters["latency_saved"] = static_cast<double>(affine.latency_saved);
  state.counters["sim_speedup"] =
      static_cast<double>(plain.time()) /
      static_cast<double>(pool_affine.makespan());
  state.counters["counters_match"] = latency_reduced ? 1.0 : 0.0;

  json_out.add(
      {.name = "batch_affinity",
       .p = units,
       .cache_capacity = 1,
       .sim_cost = pool_affine.makespan(),
       .sim_speedup = static_cast<double>(plain.time()) /
                      static_cast<double>(pool_affine.makespan()),
       .counters_match = latency_reduced,
       .resident_hits = affine.resident_hits,
       .latency_saved = affine.latency_saved,
       .evictions = affine.evictions,
       .wall_ns = tcu::bench::pool_wall_ns(pool_affine),
       .extra = {{"latency_plain", static_cast<double>(plain.latency_time)},
                 {"latency_affine",
                  static_cast<double>(affine.latency_time)}}});
}

}  // namespace

BENCHMARK(BM_PoolScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgNames({"units"})
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK(BM_BatchAffinity)
    ->Arg(1)->Arg(2)->Arg(4)
    ->ArgNames({"units"})
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK_MAIN();
