// THM6 — Seidel all-pairs shortest distances,
// O((n^2/m)^{w0} (m + l) log n).
//
// Connected random graphs; both the standard (w0 = 3/2) and Strassen
// (w0 ~ 1.4) product kernels. Reports the ratio vs the closed form and
// the speedup over all-sources BFS (which is output-optimal on sparse
// graphs — the TCU wins only on dense instances, and the crossover is
// part of the reproduction).

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "graph/apsd.hpp"
#include "graph/generators.hpp"

namespace {

void BM_ApsdSeidel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const bool strassen = state.range(2) != 0;
  auto adj = tcu::graph::random_connected_graph(n, 0.05, 1100 + n + m);
  tcu::Device<std::int64_t> dev({.m = m, .latency = 16});
  for (auto _ : state) {
    dev.reset();
    auto d = tcu::graph::apsd_seidel(dev, adj.view(),
                                     {.use_strassen = strassen});
    benchmark::DoNotOptimize(d.data());
  }
  tcu::bench::report(
      state, dev.counters(),
      tcu::costs::thm6_apsd(static_cast<double>(n), static_cast<double>(m),
                            16.0, strassen ? 7 : 8, 4));
  tcu::Counters ram;
  auto d = tcu::graph::apsd_bfs(adj.view(), ram);
  state.counters["bfs_time"] = static_cast<double>(ram.time());
  state.counters["speedup_vs_bfs"] =
      static_cast<double>(ram.time()) /
      static_cast<double>(dev.counters().time());
}

}  // namespace

BENCHMARK(BM_ApsdSeidel)
    ->ArgsProduct({{64, 128, 256}, {64, 256}, {0, 1}})
    ->ArgNames({"n", "m", "strassen"})
    ->Iterations(1);

BENCHMARK_MAIN();
