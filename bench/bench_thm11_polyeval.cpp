// THM11 — batch polynomial evaluation,
// O(p n / sqrt(m) + p sqrt(m) + (n/m) l).
//
// Sweeps degree and point count; reports the ratio vs the closed form and
// the speedup over per-point Horner (approaches sqrt(m)).

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "poly/poly.hpp"

namespace {

void BM_PolyEvalTcu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = static_cast<std::size_t>(state.range(1));
  const auto m = static_cast<std::size_t>(state.range(2));
  tcu::util::Xoshiro256 rng(1600 + n + p);
  std::vector<double> coeffs(n), points(p);
  for (auto& c : coeffs) c = rng.uniform(-1, 1);
  for (auto& x : points) x = rng.uniform(-1, 1);
  tcu::Device<double> dev({.m = m, .latency = 32});
  for (auto _ : state) {
    dev.reset();
    auto vals = tcu::poly::eval_tcu(dev, coeffs, points);
    benchmark::DoNotOptimize(vals.data());
  }
  tcu::bench::report(
      state, dev.counters(),
      tcu::costs::thm11_polyeval(static_cast<double>(n),
                                 static_cast<double>(p),
                                 static_cast<double>(m), 32.0));
  tcu::Counters ram;
  (void)tcu::poly::eval_horner(coeffs, points, ram);
  state.counters["speedup_vs_horner"] =
      static_cast<double>(ram.time()) /
      static_cast<double>(dev.counters().time());
}

}  // namespace

BENCHMARK(BM_PolyEvalTcu)
    ->ArgsProduct({{1024, 8192, 65536}, {64, 512, 4096}, {256}})
    ->ArgNames({"n", "p", "m"})
    ->Iterations(1);

BENCHMARK_MAIN();
