// THM8 — linear (n, k)-stencil, O(n log_m k + l log k).
//
// Heat-equation workload. Two sweeps: k at fixed grid (the log_m k
// growth) and grid size at fixed k (linear growth in n). Reports the
// speedup over direct sweeps, which the convolution pipeline overtakes as
// k grows — the headline crossover of §4.6.

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "stencil/stencil.hpp"

namespace {

using tcu::stencil::Complex;

void BM_StencilTcu(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto m = static_cast<std::size_t>(state.range(2));
  auto w = tcu::stencil::heat_kernel(0.125, 0.125);
  auto grid = tcu::bench::random_matrix(dim, dim, 1300 + dim + k);
  tcu::Device<Complex> dev({.m = m, .latency = 16});
  for (auto _ : state) {
    dev.reset();
    auto out = tcu::stencil::stencil_tcu(dev, grid.view(), w, k);
    benchmark::DoNotOptimize(out.data());
  }
  tcu::bench::report(
      state, dev.counters(),
      tcu::costs::thm8_stencil(static_cast<double>(dim) * dim,
                               static_cast<double>(k),
                               static_cast<double>(m), 16.0));
  // Where the constants live: the Lemma 2 weight-matrix share, and the
  // ratio against the paper's pre-absorption two-term bound.
  tcu::Device<Complex> wdev({.m = m, .latency = 16});
  (void)tcu::stencil::weight_matrix_tcu(wdev, w, k);
  const auto weight_time = static_cast<double>(wdev.counters().time());
  state.counters["weight_time"] = weight_time;
  state.counters["weight_share"] =
      weight_time / static_cast<double>(dev.counters().time());
  const double refined = tcu::costs::thm8_stencil_refined(
      static_cast<double>(dim) * dim, static_cast<double>(k),
      static_cast<double>(m), 16.0);
  state.counters["ratio_refined"] =
      static_cast<double>(dev.counters().time()) / refined;
  tcu::Counters unroll;
  (void)tcu::stencil::weight_matrix_unrolled(w, k, unroll);
  state.counters["weight_unrolled_time"] =
      static_cast<double>(unroll.time());
  tcu::Counters ram;
  (void)tcu::stencil::stencil_direct(grid.view(), w, k, ram);
  state.counters["direct_time"] = static_cast<double>(ram.time());
  state.counters["speedup_vs_direct"] =
      static_cast<double>(ram.time()) /
      static_cast<double>(dev.counters().time());
}

}  // namespace

// Sweep k at fixed grid; then grid at fixed k.
BENCHMARK(BM_StencilTcu)
    ->ArgsProduct({{64}, {4, 8, 16, 32, 64}, {256}})
    ->ArgNames({"dim", "k", "m"})
    ->Iterations(1);
BENCHMARK(BM_StencilTcu)
    ->ArgsProduct({{32, 64, 128}, {16}, {256}})
    ->ArgNames({"dim", "k", "m"})
    ->Iterations(1);

BENCHMARK_MAIN();
