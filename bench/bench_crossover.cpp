// XOVER — where the tensor unit wins and where it loses.
//
// The model discussion (§3.1) implies crossovers in m and l: the TCU's
// n^{3/2}/sqrt(m) work term beats any RAM algorithm for large n, but
// latency-dominated regimes (small problems, huge l) favour the CPU, and
// sub-cubic RAM algorithms (Strassen) narrow the gap. This bench maps the
// frontier for dense MM, DFT and transitive closure.

#include "bench_common.hpp"
#include "dft/dft.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"
#include "linalg/dense.hpp"
#include "linalg/strassen.hpp"

namespace {

void BM_DenseCrossover(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  auto a = tcu::bench::random_matrix(d, d, 2000 + d);
  auto b = tcu::bench::random_matrix(d, d, 2100 + d);
  tcu::Device<double> dev({.m = m, .latency = ell});
  for (auto _ : state) {
    dev.reset();
    auto c = tcu::linalg::matmul_tcu(dev, a.view(), b.view());
    benchmark::DoNotOptimize(c.data());
  }
  tcu::Counters naive, strassen;
  (void)tcu::linalg::matmul_naive<double>(a.view(), b.view(), naive);
  (void)tcu::linalg::matmul_strassen_ram<double>(a.view(), b.view(),
                                                 strassen, 32);
  const auto tcu_time = static_cast<double>(dev.counters().time());
  state.counters["tcu_time"] = tcu_time;
  state.counters["naive_ram_time"] = static_cast<double>(naive.time());
  state.counters["strassen_ram_time"] =
      static_cast<double>(strassen.time());
  state.counters["tcu_wins_vs_naive"] =
      static_cast<double>(naive.time()) > tcu_time ? 1.0 : 0.0;
  state.counters["tcu_wins_vs_strassen"] =
      static_cast<double>(strassen.time()) > tcu_time ? 1.0 : 0.0;
}

void BM_DftCrossover(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  tcu::util::Xoshiro256 rng(2200 + n);
  tcu::dft::CVec x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  tcu::Device<tcu::dft::Complex> dev({.m = m, .latency = ell});
  for (auto _ : state) {
    dev.reset();
    auto y = tcu::dft::dft_tcu(dev, x);
    benchmark::DoNotOptimize(y.data());
  }
  tcu::Counters fft;
  (void)tcu::dft::fft_ram(x, fft);
  const auto tcu_time = static_cast<double>(dev.counters().time());
  state.counters["tcu_time"] = tcu_time;
  state.counters["fft_ram_time"] = static_cast<double>(fft.time());
  state.counters["tcu_wins"] =
      static_cast<double>(fft.time()) > tcu_time ? 1.0 : 0.0;
}

void BM_ClosureCrossover(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  auto adj = tcu::graph::random_digraph(n, 0.05, 2300 + n);
  tcu::Device<std::int64_t> dev({.m = m, .latency = 64});
  for (auto _ : state) {
    dev.reset();
    auto work = adj;
    tcu::graph::closure_tcu(dev, work.view());
    benchmark::DoNotOptimize(work.data());
  }
  tcu::Counters ram;
  auto work = adj;
  tcu::graph::closure_naive(work.view(), ram);
  const auto tcu_time = static_cast<double>(dev.counters().time());
  state.counters["tcu_time"] = tcu_time;
  state.counters["ram_time"] = static_cast<double>(ram.time());
  state.counters["tcu_wins"] =
      static_cast<double>(ram.time()) > tcu_time ? 1.0 : 0.0;
}

}  // namespace

BENCHMARK(BM_DenseCrossover)
    ->ArgsProduct({{32, 64, 128, 256}, {256}, {0, 16384, 262144}})
    ->ArgNames({"d", "m", "l"})
    ->Iterations(1);
BENCHMARK(BM_DftCrossover)
    ->ArgsProduct({{8192, 65536}, {256, 4096, 65536}, {0, 65536}})
    ->ArgNames({"n", "m", "l"})
    ->Iterations(1);
BENCHMARK(BM_ClosureCrossover)
    ->ArgsProduct({{64, 128, 256}, {64, 1024}})
    ->ArgNames({"n", "m"})
    ->Iterations(1);

BENCHMARK_MAIN();
