// ABL4 — multiple parallel tensor units (§3.1's deferred feature).
//
// Dense Theorem 2 multiplication on a DevicePool of p units: output
// strips are dealt greedily. Reports makespan vs the single-unit time
// (ideal speedup = p when strips >> p), total work conservation, and the
// efficiency loss when the strip count does not divide p.

#include "bench_common.hpp"
#include "core/pool.hpp"
#include "linalg/parallel.hpp"

namespace {

void BM_MultiUnitDense(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto units = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  auto a = tcu::bench::random_matrix(d, d, 3200 + d);
  auto b = tcu::bench::random_matrix(d, d, 3300 + d);
  tcu::DevicePool<double> pool(units, {.m = 256, .latency = ell});
  for (auto _ : state) {
    pool.reset();
    auto c = tcu::linalg::matmul_tcu_pool(pool, a.view(), b.view());
    benchmark::DoNotOptimize(c.data());
  }
  tcu::Device<double> single({.m = 256, .latency = ell});
  (void)tcu::linalg::matmul_tcu(single, a.view(), b.view());
  const auto makespan = static_cast<double>(pool.makespan());
  const auto single_time = static_cast<double>(single.counters().time());
  state.counters["units"] = static_cast<double>(units);
  state.counters["makespan"] = makespan;
  state.counters["single_unit_time"] = single_time;
  state.counters["speedup"] = single_time / makespan;
  state.counters["efficiency"] =
      single_time / makespan / static_cast<double>(units);
}

}  // namespace

BENCHMARK(BM_MultiUnitDense)
    ->ArgsProduct({{128, 256, 512}, {1, 2, 4, 8, 16}, {0, 1024}})
    ->ArgNames({"d", "units", "l"})
    ->Iterations(1);

BENCHMARK_MAIN();
