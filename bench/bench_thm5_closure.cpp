// THM5 — transitive closure,
// Theta(n^3/sqrt(m) + (n^2/m) l + n^2 sqrt(m)).
//
// Random digraphs across densities; reports ratio vs the closed form and
// speedup over the Figure 5 RAM loop.

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"

namespace {

void BM_ClosureTcu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const double density = static_cast<double>(state.range(2)) / 100.0;
  auto adj = tcu::graph::random_digraph(n, density, 1000 + n + m);
  tcu::Device<std::int64_t> dev({.m = m, .latency = 32});
  for (auto _ : state) {
    dev.reset();
    auto work = adj;
    tcu::graph::closure_tcu(dev, work.view());
    benchmark::DoNotOptimize(work.data());
  }
  tcu::bench::report(state, dev.counters(),
                     tcu::costs::thm5_closure(static_cast<double>(n),
                                              static_cast<double>(m), 32.0));
  tcu::Counters ram;
  auto work = adj;
  tcu::graph::closure_naive(work.view(), ram);
  state.counters["speedup_vs_ram"] =
      static_cast<double>(ram.time()) /
      static_cast<double>(dev.counters().time());
}

}  // namespace

BENCHMARK(BM_ClosureTcu)
    ->ArgsProduct({{64, 128, 256}, {64, 256}, {2, 10}})
    ->ArgNames({"n", "m", "density_pct"})
    ->Iterations(1);

BENCHMARK_MAIN();
