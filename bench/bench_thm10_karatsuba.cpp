// THM10 — Karatsuba with the TCU base case,
// O((n/(kappa sqrt(m)))^{log2 3} (sqrt(m) + l/sqrt(m))).
//
// Sweeps the bit length and compares against the pure Theorem 9 kernel:
// the recursion wins once n/(kappa sqrt(m)) is large, and the fitted
// exponent of the sweep is log2 3 ~ 1.585 (vs 2 for schoolbook).

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "intmul/mul.hpp"

namespace {

void BM_KaratsubaTcu(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  tcu::util::Xoshiro256 rng(1500 + bits + m);
  const auto a = tcu::intmul::BigInt::random_bits(bits, rng);
  const auto b = tcu::intmul::BigInt::random_bits(bits, rng);
  tcu::Device<std::int64_t> dev({.m = m, .latency = 64});
  for (auto _ : state) {
    dev.reset();
    auto c = tcu::intmul::mul_karatsuba_tcu(dev, a, b);
    benchmark::DoNotOptimize(c.limb_count());
  }
  tcu::bench::report(
      state, dev.counters(),
      tcu::costs::thm10_karatsuba(static_cast<double>(bits), 64.0,
                                  static_cast<double>(m), 64.0));
  tcu::Device<std::int64_t> dev9({.m = m, .latency = 64});
  (void)tcu::intmul::mul_schoolbook_tcu(dev9, a, b);
  state.counters["thm9_time"] = static_cast<double>(dev9.counters().time());
  state.counters["speedup_vs_thm9"] =
      static_cast<double>(dev9.counters().time()) /
      static_cast<double>(dev.counters().time());
}

}  // namespace

BENCHMARK(BM_KaratsubaTcu)
    ->ArgsProduct({{16384, 65536, 262144}, {64, 256}})
    ->ArgNames({"bits", "m"})
    ->Iterations(1);

BENCHMARK_MAIN();
