// ABL3 — numerical precision (§6 open question).
//
// The model ignores precision; real units compute fp16 x fp16 -> fp32.
// This ablation measures the numerical error (not model time, which is
// identical by construction) of tall GEMMs and of the Theorem 2 blocked
// matmul under TC-like (10/23-bit), bf16-like (7/23-bit) and int8-like
// (7/30-bit wide-accumulator) engines against the exact reference, as a
// function of the reduction depth.

#include "bench_common.hpp"
#include "core/precision.hpp"
#include "linalg/dense.hpp"

namespace {

void BM_PrecisionError(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const int in_bits = static_cast<int>(state.range(1));
  const int acc_bits = static_cast<int>(state.range(2));
  auto a = tcu::bench::random_matrix(d, d, 3000 + d);
  auto b = tcu::bench::random_matrix(d, d, 3100 + d);
  tcu::Device<double> exact({.m = 256});
  tcu::Device<double> quant(
      {.m = 256}, tcu::limited_precision_engine(
                      {.input_mantissa = in_bits, .acc_mantissa = acc_bits}));
  double err = 0;
  for (auto _ : state) {
    exact.reset();
    quant.reset();
    auto c1 = tcu::linalg::matmul_tcu(exact, a.view(), b.view());
    auto c2 = tcu::linalg::matmul_tcu(quant, a.view(), b.view());
    err = tcu::max_abs_diff(c1.view(), c2.view());
    benchmark::DoNotOptimize(err);
  }
  state.counters["max_abs_err"] = err;
  state.counters["err_per_mac"] = err / static_cast<double>(d);
  state.counters["model_time_exact"] =
      static_cast<double>(exact.counters().time());
  state.counters["model_time_quant"] =
      static_cast<double>(quant.counters().time());
}

}  // namespace

BENCHMARK(BM_PrecisionError)
    ->ArgsProduct({{64, 128, 256}, {7, 10, 23}, {23, 30}})
    ->ArgNames({"d", "in_bits", "acc_bits"})
    ->Iterations(1);

BENCHMARK_MAIN();
