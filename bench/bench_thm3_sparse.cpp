// THM3 — output-sensitive sparse multiplication,
// O(sqrt(n/Z) (Z/m)^{w0} (m + l) + I).
//
// Balanced workloads by construction: circulant band matrices where the
// output size Z scales with dim * band. Sweeps dimension and bandwidth;
// reports I (input nnz), Z (output nnz) and the measured/predicted ratio.

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "linalg/sparse.hpp"

namespace {

using tcu::linalg::SparseEntry;
using tcu::linalg::SparseMatrix;

SparseMatrix<std::int64_t> band_matrix(std::size_t dim, std::size_t band,
                                       std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  std::vector<SparseEntry<std::int64_t>> entries;
  entries.reserve(dim * band);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t d = 0; d < band; ++d) {
      entries.push_back({i, (i + d * 3) % dim,
                         static_cast<std::int64_t>(rng.uniform_int(1, 9))});
    }
  }
  return SparseMatrix<std::int64_t>::from_entries(dim, dim,
                                                  std::move(entries));
}

void BM_SparseTcu(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto band = static_cast<std::size_t>(state.range(1));
  const auto m = static_cast<std::size_t>(state.range(2));
  auto a = band_matrix(dim, band, 700 + dim + band);
  auto b = band_matrix(dim, band, 800 + dim + band);
  tcu::Counters ram;
  const auto expect = tcu::linalg::spmm_naive(a, b, ram);
  tcu::Device<std::int64_t> dev({.m = m, .latency = 16});
  std::size_t z = 0;
  for (auto _ : state) {
    dev.reset();
    auto c = tcu::linalg::spmm_tcu(dev, a, b,
                                   {.z_hint = expect.nnz(), .seed = 97});
    z = c.nnz();
    benchmark::DoNotOptimize(z);
  }
  const double I = static_cast<double>(a.nnz() + b.nnz());
  tcu::bench::report(
      state, dev.counters(),
      tcu::costs::thm3_sparse(static_cast<double>(dim) * dim,
                              static_cast<double>(z), I,
                              static_cast<double>(m), 16.0));
  state.counters["I"] = I;
  state.counters["Z"] = static_cast<double>(z);
  state.counters["naive_time"] = static_cast<double>(ram.time());
}

}  // namespace

BENCHMARK(BM_SparseTcu)
    ->ArgsProduct({{128, 256, 512}, {2, 4, 8}, {16, 64}})
    ->ArgNames({"dim", "band", "m"})
    ->Iterations(1);

BENCHMARK_MAIN();
