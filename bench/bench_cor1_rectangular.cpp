// COR1 — rectangular products sqrt(n) x r times r x sqrt(n),
// Theta(r n / sqrt(m) + (r sqrt(n)/m) l).
//
// Sweeps the inner dimension r at fixed sqrt(n): model time must grow
// linearly in r, and the latency term linearly in r as well.

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "linalg/dense.hpp"

namespace {

void BM_RectangularTcu(benchmark::State& state) {
  const auto root_n = static_cast<std::size_t>(state.range(0));
  const auto r = static_cast<std::size_t>(state.range(1));
  const auto m = static_cast<std::size_t>(state.range(2));
  const auto ell = static_cast<std::uint64_t>(state.range(3));
  auto a = tcu::bench::random_matrix(root_n, r, 500 + root_n + r);
  auto b = tcu::bench::random_matrix(r, root_n, 600 + root_n + r);
  tcu::Device<double> dev({.m = m, .latency = ell});
  for (auto _ : state) {
    dev.reset();
    auto c = tcu::linalg::matmul_tcu(dev, a.view(), b.view());
    benchmark::DoNotOptimize(c.data());
  }
  tcu::bench::report(
      state, dev.counters(),
      tcu::costs::cor1_rectangular(
          static_cast<double>(root_n) * root_n, static_cast<double>(r),
          static_cast<double>(m), static_cast<double>(ell)));
}

}  // namespace

BENCHMARK(BM_RectangularTcu)
    ->ArgsProduct({{256}, {16, 64, 256, 1024}, {256}, {0, 2048}})
    ->ArgNames({"sqrt_n", "r", "m", "l"})
    ->Iterations(1);

BENCHMARK_MAIN();
