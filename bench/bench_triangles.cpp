// TRI — triangle counting via trace(A^3)/6 (the §1.1 fast-MM application
// transferred to the TCU through Theorems 1/2).
//
// Random graphs across densities; reports the count, the model time for
// the standard and Strassen product kernels, and the speedup over triple
// enumeration (which wins on very sparse graphs — the crossover matters).

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/triangles.hpp"

namespace {

void BM_TrianglesTcu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double density = static_cast<double>(state.range(1)) / 100.0;
  const bool strassen = state.range(2) != 0;
  auto g = tcu::graph::random_connected_graph(n, density, 3600 + n);
  tcu::Device<std::int64_t> dev({.m = 256, .latency = 32});
  std::uint64_t count = 0;
  for (auto _ : state) {
    dev.reset();
    count = tcu::graph::count_triangles_tcu(dev, g.view(),
                                            {.use_strassen = strassen});
    benchmark::DoNotOptimize(count);
  }
  tcu::Counters ram;
  const auto check = tcu::graph::count_triangles_ram(g.view(), ram);
  state.counters["triangles"] = static_cast<double>(count);
  state.counters["sim_time"] = static_cast<double>(dev.counters().time());
  state.counters["enum_time"] = static_cast<double>(ram.time());
  state.counters["speedup_vs_enum"] =
      static_cast<double>(ram.time()) /
      static_cast<double>(dev.counters().time());
  state.counters["agrees"] = count == check ? 1.0 : 0.0;
}

}  // namespace

BENCHMARK(BM_TrianglesTcu)
    ->ArgsProduct({{64, 128, 256}, {5, 20, 60}, {0, 1}})
    ->ArgNames({"n", "density_pct", "strassen"})
    ->Iterations(1);

BENCHMARK_MAIN();
