// NN — the motivating workload (§1, §2.1): dense-layer inference and
// im2col convolution on the device.
//
// Reports model time per input as a function of batch size (amortizing to
// the work term as the batch grows: the §3 asymmetry property) and the
// conv2d lowering cost against its direct RAM reference.

#include "bench_common.hpp"
#include "nn/layers.hpp"

namespace {

void BM_DenseLayerBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto width = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  auto w = tcu::bench::random_matrix(width, width, 4000 + width);
  tcu::nn::DenseLayer layer(w, std::vector<double>(width, 0.1));
  auto x = tcu::bench::random_matrix(batch, width, 4100 + batch);
  tcu::Device<double> dev({.m = 256, .latency = ell});
  for (auto _ : state) {
    dev.reset();
    auto y = layer.forward(dev, x.view());
    benchmark::DoNotOptimize(y.data());
  }
  const auto time = static_cast<double>(dev.counters().time());
  state.counters["sim_time"] = time;
  state.counters["time_per_input"] = time / static_cast<double>(batch);
  state.counters["tensor_calls"] =
      static_cast<double>(dev.counters().tensor_calls);
  state.counters["latency_time"] =
      static_cast<double>(dev.counters().latency_time);
}

void BM_Conv2d(benchmark::State& state) {
  const auto h = static_cast<std::size_t>(state.range(0));
  const auto cin = static_cast<std::size_t>(state.range(1));
  const auto cout = static_cast<std::size_t>(state.range(2));
  auto input = tcu::bench::random_matrix(cin * h, h, 4200 + h);
  auto filters = tcu::bench::random_matrix(cout, cin * 9, 4300 + cout);
  tcu::Device<double> dev({.m = 256, .latency = 64});
  for (auto _ : state) {
    dev.reset();
    auto y = tcu::nn::conv2d_tcu(dev, input.view(), cin, filters.view(), 3,
                                 3);
    benchmark::DoNotOptimize(y.data());
  }
  tcu::Counters ram;
  (void)tcu::nn::conv2d_ram(input.view(), cin, filters.view(), 3, 3, ram);
  state.counters["sim_time"] = static_cast<double>(dev.counters().time());
  state.counters["ram_time"] = static_cast<double>(ram.time());
  state.counters["speedup_vs_ram"] =
      static_cast<double>(ram.time()) /
      static_cast<double>(dev.counters().time());
}

}  // namespace

BENCHMARK(BM_DenseLayerBatch)
    ->ArgsProduct({{16, 256, 4096}, {64, 256}, {0, 4096}})
    ->ArgNames({"batch", "width", "l"})
    ->Iterations(1);
BENCHMARK(BM_Conv2d)
    ->ArgsProduct({{32, 64, 128}, {3, 16}, {16, 64}})
    ->ArgNames({"h", "cin", "cout"})
    ->Iterations(1);

BENCHMARK_MAIN();
