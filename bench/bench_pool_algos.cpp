// POOL2 — the pool-parallel algorithm paths beyond dense matmul:
// Strassen (Theorem 1 leaves fanned out over units), transitive closure
// (Theorem 5 kernel-D block columns), Seidel APSD (Theorem 6 products),
// and the batched DFT (Theorem 7 levels row-split). Each configuration
// reports the machine-independent signals — pool makespan (sim_cost),
// serial simulated time / makespan (sim_speedup), and counters_match,
// the bit-identity of the pool aggregate with the serial schedule — and
// appends them to BENCH_pool_algos.json. The DFT's contract is
// match-modulo-reload-latency (each unit loads the level's Fourier tile
// once); its counters_match asserts exactly that relation.

#include "bench_common.hpp"
#include "core/pool.hpp"
#include "dft/dft.hpp"
#include "graph/apsd.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"
#include "linalg/strassen.hpp"

namespace {

tcu::bench::PoolBenchJson json_out("pool_algos");

constexpr std::uint64_t kEll = 256;

void record(benchmark::State& state, const char* name, std::size_t units,
            std::uint64_t makespan, const tcu::Counters& ref, bool match) {
  const double sim_speedup =
      static_cast<double>(ref.time()) / static_cast<double>(makespan);
  state.counters["units"] = static_cast<double>(units);
  state.counters["sim_speedup"] = sim_speedup;
  state.counters["counters_match"] = match ? 1.0 : 0.0;
  tcu::bench::report(state, ref, static_cast<double>(ref.time()));
  json_out.add({.name = name,
                .p = units,
                .sim_cost = makespan,
                .sim_speedup = sim_speedup,
                .counters_match = match,
                .extra = {}});
}

void BM_StrassenPool(benchmark::State& state) {
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t d = tcu::bench::bench_tiny() ? 64 : 256;
  const std::size_t m = tcu::bench::bench_tiny() ? 64 : 1024;
  auto a = tcu::bench::random_matrix(d, d, 9500);
  auto b = tcu::bench::random_matrix(d, d, 9501);

  tcu::Device<double> single({.m = m, .latency = kEll});
  auto expect =
      tcu::linalg::matmul_strassen_tcu(single, a.view(), b.view());

  tcu::DevicePool<double> pool(units, {.m = m, .latency = kEll});
  tcu::Matrix<double> got;
  for (auto _ : state) {
    pool.reset();
    got = tcu::linalg::matmul_strassen_tcu_pool(pool, a.view(), b.view());
    benchmark::DoNotOptimize(got.data());
  }
  const bool match =
      got == expect &&
      tcu::bench::counters_match_serial(pool.aggregate(), single.counters());
  record(state, "strassen_pool", units, pool.makespan(), single.counters(),
         match);
}

void BM_ClosurePool(benchmark::State& state) {
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t n = tcu::bench::bench_tiny() ? 96 : 512;
  const std::size_t m = tcu::bench::bench_tiny() ? 256 : 4096;
  auto adj = tcu::graph::random_digraph(n, 4.0 / static_cast<double>(n), 42);

  tcu::graph::AdjMatrix serial_d = adj;
  tcu::Device<tcu::graph::Vert> single({.m = m, .latency = kEll});
  tcu::graph::closure_tcu(single, serial_d.view());

  tcu::DevicePool<tcu::graph::Vert> pool(units, {.m = m, .latency = kEll});
  tcu::graph::AdjMatrix pool_d(0, 0);
  for (auto _ : state) {
    pool.reset();
    pool_d = adj;
    tcu::graph::closure_tcu(pool, pool_d.view());
    benchmark::DoNotOptimize(pool_d.data());
  }
  const bool match =
      pool_d == serial_d &&
      tcu::bench::counters_match_serial(pool.aggregate(), single.counters());
  record(state, "closure_pool", units, pool.makespan(), single.counters(),
         match);
}

void BM_ApsdPool(benchmark::State& state) {
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t n = tcu::bench::bench_tiny() ? 48 : 160;
  const std::size_t m = tcu::bench::bench_tiny() ? 64 : 256;
  // Connected undirected graph: ring plus chords.
  tcu::graph::AdjMatrix adj(n, n, 0);
  tcu::util::Xoshiro256 rng(77);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    adj(i, j) = adj(j, i) = 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {
      if (rng.uniform(0, 1) < 2.0 / static_cast<double>(n)) {
        adj(i, j) = adj(j, i) = 1;
      }
    }
  }

  tcu::Device<std::int64_t> single({.m = m, .latency = kEll});
  auto expect = tcu::graph::apsd_seidel(single, adj.view());

  tcu::DevicePool<std::int64_t> pool(units, {.m = m, .latency = kEll});
  tcu::Matrix<std::int64_t> got;
  for (auto _ : state) {
    pool.reset();
    got = tcu::graph::apsd_seidel(pool, adj.view());
    benchmark::DoNotOptimize(got.data());
  }
  const bool match =
      got == expect &&
      tcu::bench::counters_match_serial(pool.aggregate(), single.counters());
  record(state, "apsd_pool", units, pool.makespan(), single.counters(),
         match);
}

void BM_DftPool(benchmark::State& state) {
  using tcu::dft::Complex;
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t b = tcu::bench::bench_tiny() ? 4 : 16;
  const std::size_t len = tcu::bench::bench_tiny() ? 240 : 4096;
  const std::size_t m = tcu::bench::bench_tiny() ? 16 : 256;
  tcu::util::Xoshiro256 rng(88);
  tcu::Matrix<Complex> input(b, len);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      input(r, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }

  tcu::Matrix<Complex> serial_batch = input;
  tcu::Device<Complex> single({.m = m, .latency = kEll});
  tcu::dft::dft_batch_tcu(single, serial_batch.view());

  tcu::DevicePool<Complex> pool(units, {.m = m, .latency = kEll});
  tcu::Matrix<Complex> pool_batch;
  for (auto _ : state) {
    pool.reset();
    pool_batch = input;
    tcu::dft::dft_batch_tcu(pool, pool_batch.view());
    benchmark::DoNotOptimize(pool_batch.data());
  }
  // Contract: identical bits, identical counters except the per-unit
  // Fourier-tile re-load latency (exactly l per extra chunked call).
  const tcu::Counters agg = pool.aggregate();
  const tcu::Counters& ref = single.counters();
  const bool match =
      pool_batch == serial_batch && agg.tensor_macs == ref.tensor_macs &&
      agg.tensor_rows == ref.tensor_rows && agg.cpu_ops == ref.cpu_ops &&
      agg.tensor_time - agg.latency_time ==
          ref.tensor_time - ref.latency_time &&
      agg.latency_time - ref.latency_time ==
          (agg.tensor_calls - ref.tensor_calls) * kEll;
  record(state, "dft_pool", units, pool.makespan(), single.counters(),
         match);
  state.counters["latency_overhead"] =
      static_cast<double>(agg.latency_time - ref.latency_time);
}

}  // namespace

BENCHMARK(BM_StrassenPool)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"units"})
    ->Iterations(1);
BENCHMARK(BM_ClosurePool)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"units"})
    ->Iterations(1);
BENCHMARK(BM_ApsdPool)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"units"})
    ->Iterations(1);
BENCHMARK(BM_DftPool)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"units"})
    ->Iterations(1);

BENCHMARK_MAIN();
