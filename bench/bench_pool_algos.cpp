// POOL2 — the pool-parallel algorithm paths beyond dense matmul:
// Strassen (Theorem 1 leaves fanned out over units), transitive closure
// (Theorem 5 kernel-D block columns), Seidel APSD (Theorem 6 products),
// the batched DFT (Theorem 7 levels row-split), and the remaining tensor
// workloads — stencils (Theorem 8 batched convolutions), Gaussian
// elimination kernel-D panels (Theorem 4), and conv2d/im2col. Each
// configuration reports the machine-independent signals — pool makespan
// (sim_cost), serial simulated time / makespan (sim_speedup), and
// counters_match, the bit-identity of the pool aggregate with the serial
// schedule — and appends them to BENCH_pool_algos.json. The DFT's
// contract is match-modulo-reload-latency (each unit loads the level's
// Fourier tile once). The stencil and conv2d paths are residency-tagged
// on both sides, so their contract is the chunked-call relation: every
// extra tensor call from the row split accounts exactly one extra l,
// paid on a first touch or saved on a resident hit — and their records
// carry the aggregate residency counters; GE matches serial in every
// field including the residency split.

#include "bench_common.hpp"
#include "core/pool.hpp"
#include "dft/dft.hpp"
#include "graph/apsd.hpp"
#include "graph/closure.hpp"
#include "graph/generators.hpp"
#include "linalg/gauss.hpp"
#include "linalg/strassen.hpp"
#include "nn/layers.hpp"
#include "stencil/stencil.hpp"

namespace {

tcu::bench::PoolBenchJson json_out("pool_algos");

constexpr std::uint64_t kEll = 256;

void record(benchmark::State& state, const char* name, std::size_t units,
            std::uint64_t makespan, const tcu::Counters& ref, bool match,
            std::uint64_t wall_ns) {
  const double sim_speedup =
      static_cast<double>(ref.time()) / static_cast<double>(makespan);
  state.counters["units"] = static_cast<double>(units);
  state.counters["sim_speedup"] = sim_speedup;
  state.counters["counters_match"] = match ? 1.0 : 0.0;
  tcu::bench::report(state, ref, static_cast<double>(ref.time()));
  json_out.add({.name = name,
                .p = units,
                .sim_cost = makespan,
                .sim_speedup = sim_speedup,
                .counters_match = match,
                .wall_ns = wall_ns,
                .extra = {}});
}

void BM_StrassenPool(benchmark::State& state) {
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t d = tcu::bench::bench_tiny() ? 64 : 256;
  const std::size_t m = tcu::bench::bench_tiny() ? 64 : 1024;
  auto a = tcu::bench::random_matrix(d, d, 9500);
  auto b = tcu::bench::random_matrix(d, d, 9501);

  tcu::Device<double> single({.m = m, .latency = kEll});
  auto expect =
      tcu::linalg::matmul_strassen_tcu(single, a.view(), b.view());

  tcu::DevicePool<double> pool(units, {.m = m, .latency = kEll});
  tcu::Matrix<double> got;
  for (auto _ : state) {
    pool.reset();
    got = tcu::linalg::matmul_strassen_tcu_pool(pool, a.view(), b.view());
    benchmark::DoNotOptimize(got.data());
  }
  const bool match =
      got == expect &&
      tcu::bench::counters_match_serial(pool.aggregate(), single.counters());
  record(state, "strassen_pool", units, pool.makespan(), single.counters(),
         match, tcu::bench::pool_wall_ns(pool));
}

void BM_ClosurePool(benchmark::State& state) {
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t n = tcu::bench::bench_tiny() ? 96 : 512;
  const std::size_t m = tcu::bench::bench_tiny() ? 256 : 4096;
  auto adj = tcu::graph::random_digraph(n, 4.0 / static_cast<double>(n), 42);

  tcu::graph::AdjMatrix serial_d = adj;
  tcu::Device<tcu::graph::Vert> single({.m = m, .latency = kEll});
  tcu::graph::closure_tcu(single, serial_d.view());

  tcu::DevicePool<tcu::graph::Vert> pool(units, {.m = m, .latency = kEll});
  tcu::graph::AdjMatrix pool_d(0, 0);
  for (auto _ : state) {
    pool.reset();
    pool_d = adj;
    tcu::graph::closure_tcu(pool, pool_d.view());
    benchmark::DoNotOptimize(pool_d.data());
  }
  const bool match =
      pool_d == serial_d &&
      tcu::bench::counters_match_serial(pool.aggregate(), single.counters());
  record(state, "closure_pool", units, pool.makespan(), single.counters(),
         match, tcu::bench::pool_wall_ns(pool));
}

void BM_ApsdPool(benchmark::State& state) {
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t n = tcu::bench::bench_tiny() ? 48 : 160;
  const std::size_t m = tcu::bench::bench_tiny() ? 64 : 256;
  // Connected undirected graph: ring plus chords.
  tcu::graph::AdjMatrix adj(n, n, 0);
  tcu::util::Xoshiro256 rng(77);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    adj(i, j) = adj(j, i) = 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {
      if (rng.uniform(0, 1) < 2.0 / static_cast<double>(n)) {
        adj(i, j) = adj(j, i) = 1;
      }
    }
  }

  tcu::Device<std::int64_t> single({.m = m, .latency = kEll});
  auto expect = tcu::graph::apsd_seidel(single, adj.view());

  tcu::DevicePool<std::int64_t> pool(units, {.m = m, .latency = kEll});
  tcu::Matrix<std::int64_t> got;
  for (auto _ : state) {
    pool.reset();
    got = tcu::graph::apsd_seidel(pool, adj.view());
    benchmark::DoNotOptimize(got.data());
  }
  const bool match =
      got == expect &&
      tcu::bench::counters_match_serial(pool.aggregate(), single.counters());
  record(state, "apsd_pool", units, pool.makespan(), single.counters(),
         match, tcu::bench::pool_wall_ns(pool));
}

void BM_DftPool(benchmark::State& state) {
  using tcu::dft::Complex;
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t b = tcu::bench::bench_tiny() ? 4 : 16;
  const std::size_t len = tcu::bench::bench_tiny() ? 240 : 4096;
  const std::size_t m = tcu::bench::bench_tiny() ? 16 : 256;
  tcu::util::Xoshiro256 rng(88);
  tcu::Matrix<Complex> input(b, len);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < len; ++j) {
      input(r, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }

  tcu::Matrix<Complex> serial_batch = input;
  tcu::Device<Complex> single({.m = m, .latency = kEll});
  tcu::dft::dft_batch_tcu(single, serial_batch.view());

  tcu::DevicePool<Complex> pool(units, {.m = m, .latency = kEll});
  tcu::Matrix<Complex> pool_batch;
  for (auto _ : state) {
    pool.reset();
    pool_batch = input;
    tcu::dft::dft_batch_tcu(pool, pool_batch.view());
    benchmark::DoNotOptimize(pool_batch.data());
  }
  // Contract: identical bits, identical counters except the per-unit
  // Fourier-tile re-load latency (exactly l per extra chunked call).
  const tcu::Counters agg = pool.aggregate();
  const tcu::Counters& ref = single.counters();
  const bool match =
      pool_batch == serial_batch && agg.tensor_macs == ref.tensor_macs &&
      agg.tensor_rows == ref.tensor_rows && agg.cpu_ops == ref.cpu_ops &&
      agg.tensor_time - agg.latency_time ==
          ref.tensor_time - ref.latency_time &&
      agg.latency_time - ref.latency_time ==
          (agg.tensor_calls - ref.tensor_calls) * kEll;
  record(state, "dft_pool", units, pool.makespan(), single.counters(),
         match, tcu::bench::pool_wall_ns(pool));
  state.counters["latency_overhead"] =
      static_cast<double>(agg.latency_time - ref.latency_time);
}

/// The residency-tagged row-split contract shared by the stencil and
/// conv2d pool paths: bit-identical everything except the latency split,
/// whose total (paid + saved) grows by exactly l per extra chunked call.
bool chunked_counters_match(const tcu::Counters& agg,
                            const tcu::Counters& ref) {
  return agg.tensor_macs == ref.tensor_macs &&
         agg.tensor_rows == ref.tensor_rows && agg.cpu_ops == ref.cpu_ops &&
         agg.tensor_time - agg.latency_time ==
             ref.tensor_time - ref.latency_time &&
         agg.tensor_calls >= ref.tensor_calls &&
         agg.latency_time + agg.latency_saved ==
             ref.latency_time + ref.latency_saved +
                 (agg.tensor_calls - ref.tensor_calls) * kEll;
}

void record_residency(benchmark::State& state, const char* name,
                      std::size_t units, std::size_t cache_capacity,
                      std::uint64_t makespan, const tcu::Counters& agg,
                      const tcu::Counters& ref, bool match,
                      std::uint64_t wall_ns) {
  const double sim_speedup =
      static_cast<double>(ref.time()) / static_cast<double>(makespan);
  state.counters["units"] = static_cast<double>(units);
  state.counters["sim_speedup"] = sim_speedup;
  state.counters["counters_match"] = match ? 1.0 : 0.0;
  state.counters["resident_hits"] = static_cast<double>(agg.resident_hits);
  state.counters["latency_saved"] = static_cast<double>(agg.latency_saved);
  tcu::bench::report(state, ref, static_cast<double>(ref.time()));
  json_out.add({.name = name,
                .p = units,
                .cache_capacity = cache_capacity,
                .sim_cost = makespan,
                .sim_speedup = sim_speedup,
                .counters_match = match,
                .resident_hits = agg.resident_hits,
                .latency_saved = agg.latency_saved,
                .evictions = agg.evictions,
                .wall_ns = wall_ns,
                .extra = {}});
}

void BM_StencilPool(benchmark::State& state) {
  using Complex = tcu::stencil::Complex;
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = tcu::bench::bench_tiny() ? 20 : 64;
  const std::size_t k = tcu::bench::bench_tiny() ? 4 : 8;
  const std::size_t m = tcu::bench::bench_tiny() ? 16 : 64;
  auto w = tcu::stencil::heat_kernel(0.1, 0.05);
  auto grid = tcu::bench::random_matrix(dim, dim, 9600);

  tcu::Device<Complex> single({.m = m, .latency = kEll});
  auto expect = tcu::stencil::stencil_tcu(single, grid.view(), w, k);

  tcu::DevicePool<Complex> pool(units, {.m = m, .latency = kEll});
  tcu::Matrix<double> got;
  for (auto _ : state) {
    pool.reset();
    got = tcu::stencil::stencil_tcu_pool(pool, grid.view(), w, k);
    benchmark::DoNotOptimize(got.data());
  }
  const tcu::Counters agg = pool.aggregate();
  const bool match = got == expect &&
                     chunked_counters_match(agg, single.counters()) &&
                     agg.resident_hits > 0;
  record_residency(state, "stencil_pool", units, 1, pool.makespan(), agg,
                   single.counters(), match, tcu::bench::pool_wall_ns(pool));
}

void BM_GePool(benchmark::State& state) {
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t m = tcu::bench::bench_tiny() ? 64 : 256;
  const std::size_t r = tcu::bench::bench_tiny() ? 64 : 256;
  tcu::util::Xoshiro256 rng(9650);
  const std::size_t d = r - 1;
  tcu::Matrix<double> A(d, d);
  std::vector<double> b(d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) A(i, j) = rng.uniform(-1, 1);
    A(i, i) += 4.0;
    b[i] = rng.uniform(-1, 1);
  }
  auto c0 = tcu::linalg::make_augmented<double>(A.view(), b, r);

  tcu::Device<double> single({.m = m, .latency = kEll});
  tcu::Matrix<double> serial = c0;
  tcu::linalg::ge_forward_tcu(single, serial.view());

  tcu::DevicePool<double> pool(units, {.m = m, .latency = kEll});
  tcu::Matrix<double> got;
  for (auto _ : state) {
    pool.reset();
    got = c0;
    tcu::linalg::ge_forward_tcu_pool(pool, got.view());
    benchmark::DoNotOptimize(got.data());
  }
  // Kernel-D keys are unique per (pivot, block column), so the pool
  // aggregate matches serial in every compared field, residency split
  // included (evictions are schedule-dependent and excluded, as in
  // every match predicate).
  const tcu::Counters agg = pool.aggregate();
  const tcu::Counters& ref = single.counters();
  const bool match = got == serial &&
                     tcu::bench::counters_match_serial(agg, ref) &&
                     agg.resident_hits == ref.resident_hits &&
                     agg.latency_saved == ref.latency_saved;
  record_residency(state, "gauss_pool", units, 1, pool.makespan(), agg, ref,
                   match, tcu::bench::pool_wall_ns(pool));
}

void BM_Conv2dPool(benchmark::State& state) {
  const auto units = static_cast<std::size_t>(state.range(0));
  const std::size_t m = tcu::bench::bench_tiny() ? 16 : 64;
  const std::size_t hw = tcu::bench::bench_tiny() ? 13 : 34;
  const std::size_t cin = 2, cout = 4, kk = 3;
  const int rounds = 2;  // repeated layers: the bank stays resident
  auto input = tcu::bench::random_matrix(cin * hw, hw, 9700);
  auto filters = tcu::bench::random_matrix(cout, cin * kk * kk, 9701);
  // Capacity covering the bank chain, on both sides: serial pays each
  // bank tile's load once ever; the pool pays it once per touching lane.
  const std::size_t cache = 8;

  tcu::Device<double> single({.m = m, .latency = kEll,
                              .resident_tiles = cache});
  tcu::Matrix<double> expect;
  for (int r = 0; r < rounds; ++r) {
    expect = tcu::nn::conv2d_tcu(single, input.view(), cin, filters.view(),
                                 kk, kk);
  }

  tcu::DevicePool<double> pool(units, {.m = m, .latency = kEll,
                                       .resident_tiles = cache});
  tcu::Matrix<double> got;
  for (auto _ : state) {
    pool.reset();
    tcu::PoolExecutor<double> exec(pool);
    for (int r = 0; r < rounds; ++r) {
      got = tcu::nn::conv2d_tcu_pool(exec, input.view(), cin, filters.view(),
                                     kk, kk);
    }
    benchmark::DoNotOptimize(got.data());
  }
  const tcu::Counters agg = pool.aggregate();
  const bool match = got == expect &&
                     chunked_counters_match(agg, single.counters()) &&
                     agg.resident_hits > 0 &&
                     single.counters().resident_hits > 0;
  record_residency(state, "conv2d_pool", units, cache, pool.makespan(), agg,
                   single.counters(), match, tcu::bench::pool_wall_ns(pool));
}

}  // namespace

BENCHMARK(BM_StrassenPool)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"units"})
    ->Iterations(1);
BENCHMARK(BM_ClosurePool)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"units"})
    ->Iterations(1);
BENCHMARK(BM_ApsdPool)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"units"})
    ->Iterations(1);
BENCHMARK(BM_DftPool)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"units"})
    ->Iterations(1);
BENCHMARK(BM_StencilPool)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"units"})
    ->Iterations(1);
BENCHMARK(BM_GePool)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"units"})
    ->Iterations(1);
BENCHMARK(BM_Conv2dPool)->Arg(1)->Arg(2)->Arg(4)->ArgNames({"units"})
    ->Iterations(1);

BENCHMARK_MAIN();
