// ABL1 — the asymmetric (tall left operand) feature of the model.
//
// Property 3 of §3 lets an algorithm stream n rows through resident
// weights, paying latency once per weight tile; the weak model (§5,
// NVIDIA-style) pays m + l per square call. For blocked dense MM the
// latency terms are (n/m) l (tall) vs (n^{3/2}/m^{3/2}) l (weak) — a
// sqrt(n/m) gap that this ablation measures directly, for dense MM and
// Gaussian elimination, across l.

#include "bench_common.hpp"
#include "linalg/dense.hpp"
#include "linalg/gauss.hpp"

namespace {

void BM_TallVsWeakDense(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  auto a = tcu::bench::random_matrix(d, d, 2400 + d);
  auto b = tcu::bench::random_matrix(d, d, 2500 + d);
  tcu::Device<double> tall({.m = m, .latency = ell});
  tcu::Device<double> weak({.m = m, .latency = ell, .allow_tall = false});
  for (auto _ : state) {
    tall.reset();
    weak.reset();
    auto c1 = tcu::linalg::matmul_tcu(tall, a.view(), b.view());
    auto c2 = tcu::linalg::matmul_tcu(weak, a.view(), b.view());
    benchmark::DoNotOptimize(c1.data());
    benchmark::DoNotOptimize(c2.data());
  }
  state.counters["tall_time"] = static_cast<double>(tall.counters().time());
  state.counters["weak_time"] = static_cast<double>(weak.counters().time());
  state.counters["weak_over_tall"] =
      static_cast<double>(weak.counters().time()) /
      static_cast<double>(tall.counters().time());
  state.counters["tall_latency"] =
      static_cast<double>(tall.counters().latency_time);
  state.counters["weak_latency"] =
      static_cast<double>(weak.counters().latency_time);
}

void BM_TallVsWeakGauss(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  tcu::util::Xoshiro256 rng(2600 + r);
  tcu::Matrix<double> base(r, r, 0.0);
  for (std::size_t i = 0; i + 1 < r; ++i) {
    double row = 0;
    for (std::size_t j = 0; j < r; ++j) {
      base(i, j) = rng.uniform(-1, 1);
      row += std::abs(base(i, j));
    }
    base(i, i) = row + 1.0;
  }
  tcu::Device<double> tall({.m = m, .latency = ell});
  tcu::Device<double> weak({.m = m, .latency = ell, .allow_tall = false});
  for (auto _ : state) {
    tall.reset();
    weak.reset();
    auto w1 = base;
    auto w2 = base;
    tcu::linalg::ge_forward_tcu(tall, w1.view());
    tcu::linalg::ge_forward_tcu(weak, w2.view());
    benchmark::DoNotOptimize(w1.data());
    benchmark::DoNotOptimize(w2.data());
  }
  state.counters["tall_time"] = static_cast<double>(tall.counters().time());
  state.counters["weak_time"] = static_cast<double>(weak.counters().time());
  state.counters["weak_over_tall"] =
      static_cast<double>(weak.counters().time()) /
      static_cast<double>(tall.counters().time());
}

}  // namespace

BENCHMARK(BM_TallVsWeakDense)
    ->ArgsProduct({{128, 256, 512}, {256}, {0, 256, 16384}})
    ->ArgNames({"d", "m", "l"})
    ->Iterations(1);
BENCHMARK(BM_TallVsWeakGauss)
    ->ArgsProduct({{128, 256}, {256}, {0, 16384}})
    ->ArgNames({"r", "m", "l"})
    ->Iterations(1);

BENCHMARK_MAIN();
