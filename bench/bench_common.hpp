#pragma once
// Shared helpers for the benchmark harness.
//
// Every bench reports, besides google-benchmark's wall time of the
// *simulation*, the scientific quantities of the reproduction as custom
// counters:
//   sim_time   — Counters::time(), the (m, l)-TCU model running time;
//   predicted  — the paper's closed-form bound for the configuration;
//   ratio      — sim_time / predicted, which a faithful reproduction keeps
//                within a narrow constant band across each sweep (the
//                Theta/O promise);
// plus experiment-specific counters (tensor calls, cycles, I/Os, speedup
// over the RAM baseline, ...). EXPERIMENTS.md records these outputs.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/counters.hpp"
#include "core/matrix.hpp"
#include "util/rng.hpp"

namespace tcu::bench {

inline Matrix<double> random_matrix(std::size_t r, std::size_t c,
                                    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Matrix<double> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

inline Matrix<std::int64_t> random_int_matrix(std::size_t r, std::size_t c,
                                              std::uint64_t seed,
                                              std::int64_t lo = -9,
                                              std::int64_t hi = 9) {
  util::Xoshiro256 rng(seed);
  Matrix<std::int64_t> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform_int(lo, hi);
  }
  return m;
}

/// Machine-readable record of one pool-bench configuration. The JSON
/// files (`BENCH_<tag>.json`, one array of these objects) are the
/// cross-PR perf trajectory: `sim_cost` is the pool makespan in model
/// units, `sim_speedup` the serial simulated time divided by it, and
/// `counters_match` the record's headline invariant — for the
/// pool_scaling / pool_algos records, whether the pool aggregate
/// reproduced the serial schedule's counters (the determinism contract;
/// dft_pool uses its documented match-modulo-reload-latency relation);
/// for batch_affinity records, whether affinity strictly reduced the
/// simulated latency with exact hit accounting. CI's bench smoke job
/// fails on any `"counters_match": false`.
struct PoolBenchRecord {
  std::string name;
  std::size_t p = 0;
  /// The units' resident-tile LRU capacity c (Device::Config). 1 is the
  /// single-slot model; the bench_residency sweep varies it.
  std::size_t cache_capacity = 1;
  std::uint64_t sim_cost = 0;
  double sim_speedup = 0.0;
  bool counters_match = false;
  std::uint64_t resident_hits = 0;   ///< aggregate resident-tile hits
  std::uint64_t latency_saved = 0;   ///< latency charges skipped by hits
  std::uint64_t evictions = 0;       ///< LRU displacements under pressure
  /// Measured backend execution wall time (nanoseconds): the sum of
  /// `Device::wall_ns()` across the pool's units for the last timed
  /// iteration — real steady_clock time spent inside the GEMM backend,
  /// under the same accounting boundary that charges `sim_cost`.
  /// Machine-dependent by nature, so the gate never regresses on it; it
  /// sits next to `sim_cost` so model predictions can be read against
  /// real execution time per record.
  std::uint64_t wall_ns = 0;
  /// Extra metric columns (e.g. latency totals).
  std::vector<std::pair<std::string, double>> extra;
};

/// Collects records and writes `BENCH_<tag>.json` at destruction (i.e.
/// at benchmark-process exit for a file-scope instance).
class PoolBenchJson {
 public:
  explicit PoolBenchJson(std::string tag) : tag_(std::move(tag)) {}

  void add(PoolBenchRecord record) { records_.push_back(std::move(record)); }

  ~PoolBenchJson() {
    std::ofstream out("BENCH_" + tag_ + ".json");
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const PoolBenchRecord& r = records_[i];
      out << "  {\"name\": \"" << r.name << "\", \"p\": " << r.p
          << ", \"cache_capacity\": " << r.cache_capacity
          << ", \"sim_cost\": " << r.sim_cost
          << ", \"sim_speedup\": " << r.sim_speedup
          << ", \"counters_match\": " << (r.counters_match ? "true" : "false")
          << ", \"resident_hits\": " << r.resident_hits
          << ", \"latency_saved\": " << r.latency_saved
          << ", \"evictions\": " << r.evictions
          << ", \"wall_ns\": " << r.wall_ns;
      for (const auto& [key, value] : r.extra) {
        out << ", \"" << key << "\": " << value;
      }
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]\n";
  }

 private:
  std::string tag_;
  std::vector<PoolBenchRecord> records_;
};

/// Problem-size override for the bench smoke job: `TCU_BENCH_SCALE=tiny`
/// shrinks the pool benches to seconds-long sizes while keeping every
/// counters_match assertion meaningful.
inline bool bench_tiny() {
  const char* scale = std::getenv("TCU_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "tiny";
}

/// The record's `wall_ns`: aggregate backend execution time across the
/// pool's units (each `Device::wall_ns()` accumulates steady_clock time
/// around its backend's runs; `reset()` clears it, so after a timed loop
/// this reads the last iteration).
template <typename Pool>
std::uint64_t pool_wall_ns(const Pool& pool) {
  std::uint64_t total = 0;
  for (std::size_t u = 0; u < pool.size(); ++u) {
    total += pool.unit(u).wall_ns();
  }
  return total;
}

/// Aggregate-vs-serial counter equality (the pool determinism contract).
inline bool counters_match_serial(const Counters& agg, const Counters& ref) {
  return agg.tensor_calls == ref.tensor_calls &&
         agg.tensor_rows == ref.tensor_rows &&
         agg.tensor_time == ref.tensor_time &&
         agg.tensor_macs == ref.tensor_macs &&
         agg.latency_time == ref.latency_time &&
         agg.cpu_ops == ref.cpu_ops;
}

/// Standard counter block: model time vs paper prediction.
inline void report(benchmark::State& state, const Counters& counters,
                   double predicted) {
  const auto sim = static_cast<double>(counters.time());
  state.counters["sim_time"] = sim;
  state.counters["predicted"] = predicted;
  state.counters["ratio"] = predicted > 0 ? sim / predicted : 0.0;
  state.counters["tensor_calls"] =
      static_cast<double>(counters.tensor_calls);
  state.counters["latency_time"] =
      static_cast<double>(counters.latency_time);
}

}  // namespace tcu::bench
