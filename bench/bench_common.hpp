#pragma once
// Shared helpers for the benchmark harness.
//
// Every bench reports, besides google-benchmark's wall time of the
// *simulation*, the scientific quantities of the reproduction as custom
// counters:
//   sim_time   — Counters::time(), the (m, l)-TCU model running time;
//   predicted  — the paper's closed-form bound for the configuration;
//   ratio      — sim_time / predicted, which a faithful reproduction keeps
//                within a narrow constant band across each sweep (the
//                Theta/O promise);
// plus experiment-specific counters (tensor calls, cycles, I/Os, speedup
// over the RAM baseline, ...). EXPERIMENTS.md records these outputs.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/counters.hpp"
#include "core/matrix.hpp"
#include "util/rng.hpp"

namespace tcu::bench {

inline Matrix<double> random_matrix(std::size_t r, std::size_t c,
                                    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Matrix<double> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1, 1);
  }
  return m;
}

inline Matrix<std::int64_t> random_int_matrix(std::size_t r, std::size_t c,
                                              std::uint64_t seed,
                                              std::int64_t lo = -9,
                                              std::int64_t hi = 9) {
  util::Xoshiro256 rng(seed);
  Matrix<std::int64_t> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform_int(lo, hi);
  }
  return m;
}

/// Standard counter block: model time vs paper prediction.
inline void report(benchmark::State& state, const Counters& counters,
                   double predicted) {
  const auto sim = static_cast<double>(counters.time());
  state.counters["sim_time"] = sim;
  state.counters["predicted"] = predicted;
  state.counters["ratio"] = predicted > 0 ? sim / predicted : 0.0;
  state.counters["tensor_calls"] =
      static_cast<double>(counters.tensor_calls);
  state.counters["latency_time"] =
      static_cast<double>(counters.latency_time);
}

}  // namespace tcu::bench
