// THM1 — Strassen-like dense multiplication, T(n) = O((n/m)^{w0} (m + l)).
//
// Sweeps the matrix dimension for p0 = 7 (Strassen, w0 ~ 1.4037) and
// p0 = 8 (standard, w0 = 3/2) and reports measured model time against the
// closed form; the ratio column must stay flat across each sweep and the
// p0 = 7 rows must undercut the p0 = 8 rows at equal sizes.

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "linalg/strassen.hpp"

namespace {

void BM_StrassenTcu(benchmark::State& state) {
  const int p0 = static_cast<int>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const auto m = static_cast<std::size_t>(state.range(2));
  const auto ell = static_cast<std::uint64_t>(state.range(3));
  auto a = tcu::bench::random_matrix(d, d, 100 + d);
  auto b = tcu::bench::random_matrix(d, d, 200 + d);
  tcu::Device<double> dev({.m = m, .latency = ell});
  for (auto _ : state) {
    dev.reset();
    auto c = tcu::linalg::matmul_strassen_tcu(dev, a.view(), b.view(),
                                              {.p0 = p0});
    benchmark::DoNotOptimize(c.data());
  }
  const double predicted = tcu::costs::thm1_strassen(
      static_cast<double>(d) * d, static_cast<double>(m),
      static_cast<double>(ell), p0, 4);
  tcu::bench::report(state, dev.counters(), predicted);
}

}  // namespace

BENCHMARK(BM_StrassenTcu)
    ->ArgsProduct({{7, 8}, {64, 128, 256, 512}, {256}, {0, 4096}})
    ->ArgNames({"p0", "d", "m", "l"})
    ->Iterations(1);

BENCHMARK_MAIN();
