// FIG1 — the systolic algorithm of Section 2.2 / Figure 1.
//
// Reproduces the schedule claims: loading B costs sqrt(m) cycles, the
// first output appears after Theta(sqrt(m)) cycles, and an n-row stream
// completes in n + 2 sqrt(m) - 2 cycles, i.e. Theta(n + sqrt(m)) per call
// while performing n*m MACs — the physical justification for the model's
// O(n sqrt(m) + l) charge. Counters: cycles, cycles_per_row, macs, and
// the cycle/model-time ratio.

#include "bench_common.hpp"
#include "systolic/systolic_array.hpp"

namespace {

void BM_SystolicStream(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  auto a = tcu::bench::random_matrix(n, s, 17 + s + n);
  auto b = tcu::bench::random_matrix(s, s, 29 + s + n);
  tcu::Matrix<double> c(n, s, 0.0);
  tcu::systolic::RunStats stats;
  for (auto _ : state) {
    tcu::systolic::SystolicArray<double> array(s);
    stats = array.multiply(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["cycles"] = static_cast<double>(stats.total_cycles());
  state.counters["load_cycles"] = static_cast<double>(stats.load_cycles);
  state.counters["first_output"] =
      static_cast<double>(stats.first_output_step);
  state.counters["macs"] = static_cast<double>(stats.mac_count);
  // Model charge for this call is n*s; cycles/(n + 3s - 2) == 1 exactly.
  state.counters["cycles_vs_schedule"] =
      static_cast<double>(stats.total_cycles()) /
      static_cast<double>(n + 3 * s - 2);
  state.counters["model_time"] = static_cast<double>(n * s);
}

void BM_OutputStationary(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  auto a = tcu::bench::random_matrix(s, s, 31 + s);
  auto b = tcu::bench::random_matrix(s, s, 37 + s);
  tcu::Matrix<double> c(s, s, 0.0);
  tcu::systolic::RunStats stats;
  for (auto _ : state) {
    tcu::systolic::OutputStationaryArray<double> array(s);
    stats = array.multiply(a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["cycles"] = static_cast<double>(stats.total_cycles());
  state.counters["macs"] = static_cast<double>(stats.mac_count);
}

}  // namespace

BENCHMARK(BM_SystolicStream)
    ->ArgsProduct({{4, 8, 16, 32}, {32, 128, 512}})
    ->ArgNames({"s", "n"})
    ->Iterations(3);
BENCHMARK(BM_OutputStationary)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->ArgNames({"s"})
    ->Iterations(3);

BENCHMARK_MAIN();
