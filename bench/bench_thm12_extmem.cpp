// THM12 — the external-memory / weak-TCU lower-bound transfer.
//
// Three measurements per configuration:
//   * blocked matmul I/Os at M = 3m, B = 1 (the classical upper bound,
//     matching the Omega(n^{3/2}/sqrt(M)) lower bound in shape);
//   * the weak-TCU model time of the same product;
//   * the I/Os of replaying the weak-TCU trace at M = 3m (the simulation
//     argument: ~3 I/Os per unit of tensor time).
// Theorem 12 predicts time >= c * io_lower_bound; the reported
// time_over_bound column must stay bounded away from zero.

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "extmem/extmem.hpp"
#include "linalg/dense.hpp"

namespace {

void BM_Theorem12(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  auto a = tcu::bench::random_matrix(d, d, 1700 + d + m);
  auto b = tcu::bench::random_matrix(d, d, 1800 + d + m);
  tcu::Device<double> dev({.m = m, .allow_tall = false});
  dev.enable_trace();
  for (auto _ : state) {
    dev.reset();
    auto c = tcu::linalg::matmul_tcu(dev, a.view(), b.view());
    benchmark::DoNotOptimize(c.data());
  }
  const double n_area = static_cast<double>(d) * d;
  const double io_bound =
      tcu::costs::extmem_mm_lower_bound(n_area, 3.0 * static_cast<double>(m));
  const auto weak_time = static_cast<double>(dev.counters().time());
  state.counters["weak_time"] = weak_time;
  state.counters["io_lower_bound"] = io_bound;
  state.counters["time_over_bound"] = weak_time / io_bound;
  state.counters["trace_replay_ios"] =
      static_cast<double>(tcu::extmem::simulate_trace_io(dev.trace(), m));
  state.counters["blocked_matmul_ios"] =
      static_cast<double>(tcu::extmem::matmul_io_blocked(d, 3 * m, 1));
}

void BM_MatmulIoScaling(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto M = static_cast<std::size_t>(state.range(1));
  std::uint64_t ios = 0;
  for (auto _ : state) {
    ios = tcu::extmem::matmul_io_blocked(d, M, 1);
    benchmark::DoNotOptimize(ios);
  }
  state.counters["ios"] = static_cast<double>(ios);
  state.counters["lower_bound"] = tcu::costs::extmem_mm_lower_bound(
      static_cast<double>(d) * d, static_cast<double>(M));
  state.counters["ratio"] =
      static_cast<double>(ios) /
      tcu::costs::extmem_mm_lower_bound(static_cast<double>(d) * d,
                                        static_cast<double>(M));
}

}  // namespace

BENCHMARK(BM_Theorem12)
    ->ArgsProduct({{64, 128, 256}, {16, 64, 256}})
    ->ArgNames({"d", "m"})
    ->Iterations(1);
BENCHMARK(BM_MatmulIoScaling)
    ->ArgsProduct({{32, 64, 128}, {48, 192, 768}})
    ->ArgNames({"d", "M"})
    ->Iterations(1);

BENCHMARK_MAIN();
