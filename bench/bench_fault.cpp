// FAULT1 — self-healing pool runtime under injected faults.
//
// One experiment, emitted to BENCH_fault.json: a dense Theorem 2
// multiplication (12 output strips, so p = 4 balances exactly) run for
// two rounds through one persistent PoolExecutor at p = 4 under three
// seeded fault scenarios:
//
//   fault_free     — no plan attached; the baseline. sim_speedup is
//                    exactly 4 and the pool aggregate is bit-identical
//                    to the serial schedule's counters.
//   transient_retry— two exact-trigger transient faults, each landing on
//                    a strip task's FIRST call. A faulted call charges
//                    nothing, so the in-place retry replays the task
//                    from zero progress and outputs, aggregate counters,
//                    and sim_speedup are all unchanged from fault_free;
//                    the RoundReport records the retries. (A mid-chain
//                    transient instead deterministically re-charges the
//                    task's partial prefix — still bit-identical output,
//                    but a larger makespan.)
//   degraded_p3    — unit 3 dies on its first call. Its strips redeal
//                    to the three survivors and both rounds finish at
//                    p - 1: sim_speedup is exactly 3 (12 strips over 3
//                    units), outputs and aggregate counters still
//                    bit-identical to serial (the dead unit never
//                    charged anything).
//
// counters_match for every record: outputs bit-identical to the serial
// reference AND aggregate counters equal to the serial schedule's AND
// the scenario's recovery bookkeeping (retries / quarantine / healthy
// count / exact degraded speedup) came out as modeled. CI's bench smoke
// job fails on any false.

#include <chrono>
#include <cmath>

#include "bench_common.hpp"
#include "core/pool.hpp"
#include "fault/fault.hpp"
#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"

namespace {

tcu::bench::PoolBenchJson json_out("fault");

// 12 output strips at every scale: divisible by p = 4 (fault-free deal)
// and by p - 1 = 3 (after one quarantine), so both speedups are exact.
std::size_t dim() { return tcu::bench::bench_tiny() ? 192 : 768; }
std::size_t bench_m() { return tcu::bench::bench_tiny() ? 256 : 4096; }
constexpr std::size_t kUnits = 4;
constexpr std::uint64_t kEll = 1024;
constexpr int kRounds = 2;

enum Scenario : int { kFaultFree = 0, kTransientRetry = 1, kDegradedP3 = 2 };

void BM_FaultRecovery(benchmark::State& state) {
  const auto scenario = static_cast<Scenario>(state.range(0));
  const std::size_t d = dim();
  auto a = tcu::bench::random_matrix(d, d, 9500);
  auto b = tcu::bench::random_matrix(d, d, 9600);

  // Fault-free serial reference schedule (same rounds).
  tcu::Device<double> single({.m = bench_m(), .latency = kEll});
  tcu::Matrix<double> expect(1, 1);
  for (int r = 0; r < kRounds; ++r) {
    expect = tcu::linalg::matmul_tcu(single, a.view(), b.view());
  }

  tcu::fault::FaultSpec spec;
  switch (scenario) {
    case kFaultFree:
      break;
    case kTransientRetry:
      // Unit call indices 0 and 12 are task starts (12 k-tile calls per
      // strip): the faulted task has no partial progress to re-charge.
      spec.transient_at = {{0, 0}, {2, 12}};
      break;
    case kDegradedP3:
      spec.death_at = {{3, 0}};
      break;
  }

  tcu::DevicePool<double> pool(kUnits, {.m = bench_m(), .latency = kEll});
  tcu::fault::FaultPlan plan(4242, spec);
  tcu::fault::ScopedInjection<double> inject(pool, plan);

  bool outputs_match = true;
  tcu::RoundReport report;
  double wall_seconds = 0.0;
  for (auto _ : state) {
    pool.reset();
    const auto t0 = std::chrono::steady_clock::now();
    tcu::PoolExecutor<double> exec(pool);
    for (int r = 0; r < kRounds; ++r) {
      auto c = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view());
      outputs_match = outputs_match && c == expect;
      benchmark::DoNotOptimize(c.data());
    }
    report = exec.fault_stats();
    const auto t1 = std::chrono::steady_clock::now();
    wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  }

  const tcu::Counters agg = pool.aggregate();
  const tcu::Counters& ref = single.counters();
  const double sim_speedup =
      static_cast<double>(ref.time()) / static_cast<double>(pool.makespan());

  // Scenario-specific recovery bookkeeping, on top of bit-identical
  // outputs and the aggregate-counters determinism contract.
  bool recovery_ok = true;
  switch (scenario) {
    case kFaultFree:
      recovery_ok = !report.faulted() && report.healthy_units == kUnits;
      break;
    case kTransientRetry:
      recovery_ok = report.transient_faults == 2 && report.retried == 2 &&
                    report.permanent_faults == 0 &&
                    report.healthy_units == kUnits &&
                    std::abs(sim_speedup - 4.0) < 1e-9;
      break;
    case kDegradedP3:
      recovery_ok = report.permanent_faults == 1 &&
                    report.quarantined == std::vector<std::size_t>{3} &&
                    report.healthy_units == kUnits - 1 &&
                    report.redealt + report.drained >= 1 &&
                    std::abs(sim_speedup - 3.0) < 1e-9;
      break;
  }
  const bool match = outputs_match &&
                     tcu::bench::counters_match_serial(agg, ref) &&
                     recovery_ok;

  state.counters["scenario"] = static_cast<double>(scenario);
  state.counters["wall_seconds"] = wall_seconds;
  state.counters["sim_speedup"] = sim_speedup;
  state.counters["retried"] = static_cast<double>(report.retried);
  state.counters["redealt"] = static_cast<double>(report.redealt);
  state.counters["dead_units"] =
      static_cast<double>(report.quarantined.size());
  state.counters["counters_match"] = match ? 1.0 : 0.0;
  tcu::bench::report(state, agg, static_cast<double>(ref.time()));

  const char* names[] = {"fault_free", "transient_retry", "degraded_p3"};
  json_out.add(
      {.name = names[scenario],
       .p = kUnits,
       .sim_cost = pool.makespan(),
       .sim_speedup = sim_speedup,
       .counters_match = match,
       .wall_ns = tcu::bench::pool_wall_ns(pool),
       .extra = {
           {"retried", static_cast<double>(report.retried)},
           {"redealt", static_cast<double>(report.redealt)},
           {"drained", static_cast<double>(report.drained)},
           {"dead_units", static_cast<double>(report.quarantined.size())}}});
}

}  // namespace

BENCHMARK(BM_FaultRecovery)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"scenario"})
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK_MAIN();
