// ABL2 — §4.5's complex-arithmetic assumption.
//
// The DFT algorithm assumes a tensor unit operating on complex words; the
// paper notes this costs only a constant on a real unit: "four matrix
// multiplications and two sums". This ablation measures that constant for
// tall complex GEMMs: native complex device vs the 4M reduction vs the 3M
// (Karatsuba) reduction on a real device.

#include <complex>

#include "bench_common.hpp"
#include "core/complex_gemm.hpp"

namespace {

using Complex = std::complex<double>;

tcu::Matrix<Complex> random_complex(std::size_t r, std::size_t c,
                                    std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  tcu::Matrix<Complex> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      m(i, j) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  return m;
}

void BM_ComplexGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  const std::size_t s = tcu::exact_sqrt(m);
  auto a = random_complex(n, s, 2700 + n);
  auto b = random_complex(s, s, 2800 + n);
  tcu::Matrix<Complex> c(n, s);

  tcu::Device<Complex> native({.m = m, .latency = ell});
  tcu::Device<double> real4({.m = m, .latency = ell});
  tcu::Device<double> real3({.m = m, .latency = ell});
  for (auto _ : state) {
    native.reset();
    real4.reset();
    real3.reset();
    native.gemm(a.view(), b.view(), c.view());
    tcu::complex_gemm_4m(real4, a.view(), b.view(), c.view());
    tcu::complex_gemm_3m(real3, a.view(), b.view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  const auto nat = static_cast<double>(native.counters().time());
  state.counters["native_time"] = nat;
  state.counters["real4m_time"] =
      static_cast<double>(real4.counters().time());
  state.counters["real3m_time"] =
      static_cast<double>(real3.counters().time());
  state.counters["slowdown_4m"] =
      static_cast<double>(real4.counters().time()) / nat;
  state.counters["slowdown_3m"] =
      static_cast<double>(real3.counters().time()) / nat;
}

}  // namespace

BENCHMARK(BM_ComplexGemm)
    ->ArgsProduct({{256, 1024, 4096}, {256}, {0, 1024}})
    ->ArgNames({"n", "m", "l"})
    ->Iterations(1);

BENCHMARK_MAIN();
