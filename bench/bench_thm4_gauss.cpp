// THM4 — Gaussian elimination forward phase,
// Theta(n^{3/2}/sqrt(m) + (n/m) l + n sqrt(m)).
//
// Sweeps the system size on diagonally dominant instances and reports the
// ratio against the closed form plus the speedup over the Figure 2 RAM
// loop. The n*sqrt(m) kernel-ABC term makes small systems relatively more
// expensive — the predicted flattening is visible in the ratio column.

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "linalg/gauss.hpp"

namespace {

tcu::Matrix<double> random_system(std::size_t r, std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  tcu::Matrix<double> c(r, r, 0.0);
  for (std::size_t i = 0; i + 1 < r; ++i) {
    double row = 0;
    for (std::size_t j = 0; j < r; ++j) {
      c(i, j) = rng.uniform(-1, 1);
      row += std::abs(c(i, j));
    }
    c(i, i) = row + 1.0;
  }
  return c;
}

void BM_GaussTcu(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  auto base = random_system(r, 900 + r + m);
  tcu::Device<double> dev({.m = m, .latency = ell});
  for (auto _ : state) {
    dev.reset();
    auto work = base;
    tcu::linalg::ge_forward_tcu(dev, work.view());
    benchmark::DoNotOptimize(work.data());
  }
  tcu::bench::report(state, dev.counters(),
                     tcu::costs::thm4_gauss(static_cast<double>(r) * r,
                                            static_cast<double>(m),
                                            static_cast<double>(ell)));
  tcu::Counters ram;
  auto work = base;
  tcu::linalg::ge_forward_naive(work.view(), ram);
  state.counters["speedup_vs_ram"] =
      static_cast<double>(ram.time()) /
      static_cast<double>(dev.counters().time());
}

}  // namespace

BENCHMARK(BM_GaussTcu)
    ->ArgsProduct({{64, 128, 256, 512}, {64, 256}, {0, 1024}})
    ->ArgNames({"r", "m", "l"})
    ->Iterations(1);

BENCHMARK_MAIN();
