// POOL3 — multi-tile residency: the cache-capacity sweep behind the LRU
// TileCache and chain-aware affinity dealing. Emitted to
// BENCH_residency.json with cache_capacity / resident_hits /
// latency_saved / evictions columns.
//
// BM_MlpResidency: repeated forwards of an Mlp whose layers span k = 4
// (and, at depth 2, k = p) B-tiles, one reused executor, swept over
// c in {1, 2, 4, 8}. Once c covers a lane's working set, every weight
// tile's load latency is charged exactly once per lane — all later
// rounds are hits, verified by the closed-form latency_saved — while
// below it the chains LRU-thrash and save nothing. Outputs and every
// counter except the latency split stay bit-identical to the serial
// device at every c (c = 1 is the single-slot PR 2 model).
//
// BM_SplitResidency: a deep single-strip product (chain k > c) compared
// between whole-chain dealing — which cannot parallelize one strip and
// thrashes its cache — and split_chains dealing, which spreads the k
// tiles over the lanes so each lane's share fits its cache: each tile's
// load is paid once per owning lane and every later round is all hits.

#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "core/pool.hpp"
#include "linalg/dense.hpp"
#include "linalg/parallel.hpp"
#include "nn/layers.hpp"

namespace {

tcu::bench::PoolBenchJson json_out("residency");

std::size_t units() { return tcu::bench::bench_tiny() ? 2 : 4; }
std::size_t tile_m() { return tcu::bench::bench_tiny() ? 64 : 4096; }
constexpr std::uint64_t kEll = 1024;
int rounds() { return tcu::bench::bench_tiny() ? 4 : 8; }

/// Integer-valued doubles: exact arithmetic, so the split_chains combine
/// (which reassociates sums) still compares bit-for-bit against serial.
tcu::Matrix<double> random_int_valued(std::size_t r, std::size_t c,
                                      std::uint64_t seed) {
  tcu::util::Xoshiro256 rng(seed);
  tcu::Matrix<double> out(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      out(i, j) = static_cast<double>(rng.uniform_int(-4, 4));
    }
  }
  return out;
}

void BM_MlpResidency(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  const auto depth = static_cast<std::size_t>(state.range(1));
  const std::size_t p = units();
  const std::size_t m = tile_m();
  const std::size_t s = tcu::exact_sqrt(m);
  const int R = rounds();

  // Layer 1 spans k = 4 B-tiles per strip (in = 4s), one strip per lane
  // (out = p*s); the optional layer 2 spans k = p tiles. A lane's working
  // set is 4 tiles at depth 1 and 4 + p at depth 2.
  tcu::nn::Mlp mlp;
  tcu::util::Xoshiro256 rng(9700);
  std::vector<std::size_t> widths{4 * s, p * s};
  if (depth == 2) widths.push_back(p * s);
  for (std::size_t l = 0; l + 1 < widths.size(); ++l) {
    auto w = random_int_valued(widths[l], widths[l + 1], 9710 + l);
    std::vector<double> bias(widths[l + 1]);
    for (auto& v : bias) v = static_cast<double>(rng.uniform_int(-2, 2));
    mlp.add_layer(tcu::nn::DenseLayer(w, bias));
  }
  auto batch = random_int_valued(2 * s, 4 * s, 9720);

  // Serial reference: untagged device, reloads every tile every round.
  tcu::Device<double> single({.m = m, .latency = kEll});
  tcu::Matrix<double> expect;
  for (int r = 0; r < R; ++r) expect = mlp.forward(single, batch.view());

  tcu::DevicePool<double> pool(p, {.m = m,
                                   .latency = kEll,
                                   .resident_tiles = c});
  tcu::Matrix<double> got;
  double wall_seconds = 0.0;
  for (auto _ : state) {
    pool.reset();
    const auto t0 = std::chrono::steady_clock::now();
    tcu::PoolExecutor<double> exec(pool);
    for (int r = 0; r < R; ++r) got = mlp.forward(exec, batch.view());
    const auto t1 = std::chrono::steady_clock::now();
    wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  }

  const tcu::Counters agg = pool.aggregate();
  const tcu::Counters& ref = single.counters();
  const std::size_t working_set = depth == 2 ? 4 + p : 4;
  // Total weight tiles across all layers and lanes.
  const std::uint64_t tiles = depth == 2 ? 4 * p + p * p : 4 * p;

  bool match = got == expect && agg.tensor_macs == ref.tensor_macs &&
               agg.tensor_calls == ref.tensor_calls &&
               agg.latency_time + agg.latency_saved == ref.latency_time;
  if (c >= working_set) {
    // The acceptance contract: each weight tile's load latency exactly
    // once per lane; every visit after the first round is a hit.
    match = match && agg.latency_time == tiles * kEll &&
            agg.resident_hits == tiles * static_cast<std::uint64_t>(R - 1) &&
            agg.latency_saved ==
                tiles * static_cast<std::uint64_t>(R - 1) * kEll &&
            agg.evictions == 0;
  } else {
    // Chains longer than the cache LRU-thrash: no hits, full reloads.
    match = match && agg.resident_hits == 0 &&
            agg.latency_time == ref.latency_time;
  }

  state.counters["units"] = static_cast<double>(p);
  state.counters["cache_capacity"] = static_cast<double>(c);
  state.counters["wall_seconds"] = wall_seconds;
  state.counters["resident_hits"] = static_cast<double>(agg.resident_hits);
  state.counters["latency_saved"] = static_cast<double>(agg.latency_saved);
  state.counters["evictions"] = static_cast<double>(agg.evictions);
  state.counters["counters_match"] = match ? 1.0 : 0.0;
  tcu::bench::report(state, agg, static_cast<double>(ref.time()));

  json_out.add({.name = depth == 2 ? "mlp_residency_d2" : "mlp_residency_d1",
                .p = p,
                .cache_capacity = c,
                .sim_cost = pool.makespan(),
                .sim_speedup = static_cast<double>(ref.time()) /
                               static_cast<double>(pool.makespan()),
                .counters_match = match,
                .resident_hits = agg.resident_hits,
                .latency_saved = agg.latency_saved,
                .evictions = agg.evictions,
                .wall_ns = tcu::bench::pool_wall_ns(pool),
                .extra = {{"latency_serial",
                           static_cast<double>(ref.latency_time)},
                          {"latency_affine",
                           static_cast<double>(agg.latency_time)}}});
}

void BM_SplitResidency(benchmark::State& state) {
  const std::size_t p = units();
  const std::size_t m = tile_m();
  const std::size_t s = tcu::exact_sqrt(m);
  const int R = rounds();
  const std::size_t k = 2 * p;  // chain depth: 2 tiles per lane when split
  const std::size_t c = 2;      // below k: whole chains must thrash

  auto a = random_int_valued(2 * s, k * s, 9800);
  auto b = random_int_valued(k * s, s, 9801);  // ONE strip

  tcu::Device<double> single({.m = m, .latency = kEll});
  tcu::Matrix<double> expect;
  for (int r = 0; r < R; ++r) {
    expect = tcu::linalg::matmul_tcu(single, a.view(), b.view());
  }

  // Whole-chain dealing: a single strip is one task — no parallelism and
  // a k-long chain cycling through a c-entry cache.
  tcu::DevicePool<double> pool_whole(p, {.m = m,
                                         .latency = kEll,
                                         .resident_tiles = c});
  tcu::Matrix<double> got_whole;
  {
    tcu::PoolExecutor<double> exec(pool_whole);
    for (int r = 0; r < R; ++r) {
      got_whole = tcu::linalg::matmul_tcu_pool(exec, a.view(), b.view(),
                                               {.affinity = true});
    }
  }

  tcu::DevicePool<double> pool_split(p, {.m = m,
                                         .latency = kEll,
                                         .resident_tiles = c});
  tcu::Matrix<double> got_split;
  double wall_seconds = 0.0;
  for (auto _ : state) {
    pool_split.reset();
    const auto t0 = std::chrono::steady_clock::now();
    tcu::PoolExecutor<double> exec(pool_split);
    for (int r = 0; r < R; ++r) {
      got_split = tcu::linalg::matmul_tcu_pool(
          exec, a.view(), b.view(),
          {.affinity = true, .split_chains = true});
    }
    const auto t1 = std::chrono::steady_clock::now();
    wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  }

  const tcu::Counters whole = pool_whole.aggregate();
  const tcu::Counters split = pool_split.aggregate();
  const tcu::Counters& ref = single.counters();
  const bool match =
      got_whole == expect && got_split == expect &&
      split.tensor_macs == ref.tensor_macs &&
      split.tensor_calls == ref.tensor_calls &&
      // Whole chains thrash at c < k...
      whole.resident_hits == 0 && whole.latency_time == ref.latency_time &&
      // ...while the split pays each tile once per owning lane, ever.
      split.latency_time == k * kEll &&
      split.resident_hits == k * static_cast<std::uint64_t>(R - 1) &&
      split.latency_saved == k * static_cast<std::uint64_t>(R - 1) * kEll;

  state.counters["units"] = static_cast<double>(p);
  state.counters["cache_capacity"] = static_cast<double>(c);
  state.counters["wall_seconds"] = wall_seconds;
  state.counters["resident_hits"] = static_cast<double>(split.resident_hits);
  state.counters["latency_saved"] = static_cast<double>(split.latency_saved);
  state.counters["latency_whole"] = static_cast<double>(whole.latency_time);
  state.counters["latency_split"] = static_cast<double>(split.latency_time);
  state.counters["counters_match"] = match ? 1.0 : 0.0;
  tcu::bench::report(state, split, static_cast<double>(ref.time()));

  json_out.add({.name = "split_residency",
                .p = p,
                .cache_capacity = c,
                .sim_cost = pool_split.makespan(),
                .sim_speedup = static_cast<double>(ref.time()) /
                               static_cast<double>(pool_split.makespan()),
                .counters_match = match,
                .resident_hits = split.resident_hits,
                .latency_saved = split.latency_saved,
                .evictions = split.evictions,
                .wall_ns = tcu::bench::pool_wall_ns(pool_split),
                .extra = {{"latency_whole",
                           static_cast<double>(whole.latency_time)},
                          {"latency_split",
                           static_cast<double>(split.latency_time)}}});
}

}  // namespace

BENCHMARK(BM_MlpResidency)
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({4, 2})->Args({8, 2})
    ->ArgNames({"c", "depth"})
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK(BM_SplitResidency)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK_MAIN();
