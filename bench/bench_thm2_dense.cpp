// THM2 — blocked dense multiplication, Theta(n^{3/2}/sqrt(m) + (n/m) l),
// optimal among semiring TCU algorithms.
//
// Sweeps dimension, tile area m and latency l; also reports the speedup
// over the charged RAM baseline (approaches sqrt(m) as l -> 0).

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "linalg/dense.hpp"

namespace {

void BM_DenseTcu(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  auto a = tcu::bench::random_matrix(d, d, 300 + d);
  auto b = tcu::bench::random_matrix(d, d, 400 + d);
  tcu::Device<double> dev({.m = m, .latency = ell});
  for (auto _ : state) {
    dev.reset();
    auto c = tcu::linalg::matmul_tcu(dev, a.view(), b.view());
    benchmark::DoNotOptimize(c.data());
  }
  const double n_area = static_cast<double>(d) * d;
  tcu::bench::report(state, dev.counters(),
                     tcu::costs::thm2_dense(n_area, static_cast<double>(m),
                                            static_cast<double>(ell)));
  // RAM baseline charges exactly d^3 multiply-accumulates.
  state.counters["speedup_vs_ram"] =
      n_area * static_cast<double>(d) /
      static_cast<double>(dev.counters().time());
}

}  // namespace

BENCHMARK(BM_DenseTcu)
    ->ArgsProduct({{64, 128, 256, 512}, {64, 256, 1024}, {0, 1024}})
    ->ArgNames({"d", "m", "l"})
    ->Iterations(1);

BENCHMARK_MAIN();
