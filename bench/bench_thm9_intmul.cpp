// THM9 — schoolbook integer multiplication on the TCU,
// O(n^2/(kappa^2 sqrt(m)) + (n/(kappa m)) l), with kappa = 64 (16-bit
// limbs = kappa/4 per the paper's overflow argument).
//
// Sweeps the bit length; reports the ratio vs the closed form and the
// speedup over the limb-level RAM schoolbook.

#include "bench_common.hpp"
#include "core/costs.hpp"
#include "intmul/mul.hpp"

namespace {

void BM_SchoolbookTcu(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const auto ell = static_cast<std::uint64_t>(state.range(2));
  tcu::util::Xoshiro256 rng(1400 + bits + m);
  const auto a = tcu::intmul::BigInt::random_bits(bits, rng);
  const auto b = tcu::intmul::BigInt::random_bits(bits, rng);
  tcu::Device<std::int64_t> dev({.m = m, .latency = ell});
  for (auto _ : state) {
    dev.reset();
    auto c = tcu::intmul::mul_schoolbook_tcu(dev, a, b);
    benchmark::DoNotOptimize(c.limb_count());
  }
  tcu::bench::report(state, dev.counters(),
                     tcu::costs::thm9_intmul(static_cast<double>(bits), 64.0,
                                             static_cast<double>(m),
                                             static_cast<double>(ell)));
  tcu::Counters ram;
  (void)tcu::intmul::mul_schoolbook_ram(a, b, ram);
  state.counters["speedup_vs_ram"] =
      static_cast<double>(ram.time()) /
      static_cast<double>(dev.counters().time());
}

}  // namespace

BENCHMARK(BM_SchoolbookTcu)
    ->ArgsProduct({{4096, 16384, 65536}, {256, 1024}, {0, 1024}})
    ->ArgNames({"bits", "m", "l"})
    ->Iterations(1);

BENCHMARK_MAIN();
